"""Tests for the repro-lint static-analysis subsystem (``tools.lint``).

Every rule is exercised against the fixture corpus in
``tools/lint/fixtures/``: the ``*_fail.py`` file must fire (with the
expected finding count) and the ``*_pass.py`` twin must stay quiet.  The
fixtures are copied into a scratch ``src/repro/`` tree under ``tmp_path``
because rule scoping is path-based — the files are inert where they live.

On top of the per-rule pairs: suppression semantics, the RL003
field-removal acceptance test, path scoping (RL004/RL006), parse-error
handling, the CLI (exit codes, JSON output, ``repro lint``), and the
"the real src/ tree is clean" end-to-end gate.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from tools.lint import PARSE_ERROR_ID, all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tools" / "lint" / "fixtures"

RULE_IDS = ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007")

#: Findings each fail fixture must produce (keep in sync with the corpus).
EXPECTED_FAIL_COUNTS = {
    "RL001": 4,  # unseeded default_rng, np.random.seed, np.random.rand, import random
    "RL002": 2,  # silent for/range(max_iter), silent while n < MAX_EXPANSIONS
    "RL003": 3,  # extra_knob missing from payload(), RoundLoopConfig without _jsonify, BatchConfig.lane_tol unkeyed
    "RL004": 4,  # from-time import, 2x time.monotonic(), datetime.now()
    "RL005": 3,  # bare except, except Exception, swallowed ConvergenceError
    "RL006": 3,  # == 0.25, a / b == target, float(x) != scale
    "RL007": 3,  # entry_path(task, "scenario"), shard_for_digest(metrics)
}


def lint_fixture(
    tmp_path,
    name,
    *,
    dest="src/repro/core",
    select=None,
    transform=None,
):
    """Copy fixture ``name`` into a scratch tree and lint it there."""
    source = (FIXTURES / f"{name}.py").read_text()
    if transform is not None:
        source = transform(source)
    target = tmp_path / dest / f"{name}.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([target], root=tmp_path, select=select)


def fixture_dest(rule_id, kind):
    """Where a fixture must live for its rule to be in scope."""
    if rule_id == "RL004" and kind == "pass":
        return "src/repro/perf"  # the one tree where the clock is allowed
    if rule_id == "RL007":
        return "src/repro/store"  # the store package is RL007's whole scope
    return "src/repro/core"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_fail_fixture_fires(tmp_path, rule_id):
    name = f"{rule_id.lower()}_fail"
    findings = lint_fixture(
        tmp_path, name, dest=fixture_dest(rule_id, "fail"), select=[rule_id]
    )
    assert len(findings) == EXPECTED_FAIL_COUNTS[rule_id], [
        f.render() for f in findings
    ]
    assert all(f.rule == rule_id for f in findings)
    # Findings point into the scratch copy with 1-based positions.
    assert all(f.path.endswith(f"{name}.py") for f in findings)
    assert all(f.line >= 1 for f in findings)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_pass_fixture_stays_quiet(tmp_path, rule_id):
    name = f"{rule_id.lower()}_pass"
    findings = lint_fixture(
        tmp_path, name, dest=fixture_dest(rule_id, "pass"), select=[rule_id]
    )
    assert findings == [], [f.render() for f in findings]


def test_pass_fixtures_clean_under_all_rules(tmp_path):
    """The pass corpus survives the full rule set, not just its own rule."""
    for rule_id in RULE_IDS:
        name = f"{rule_id.lower()}_pass"
        findings = lint_fixture(tmp_path, name, dest=fixture_dest(rule_id, "pass"))
        assert findings == [], (name, [f.render() for f in findings])


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def _suppress(line_fragment, rule_id):
    """A transform adding a disable comment to the line containing the fragment."""

    def transform(source):
        out = []
        for line in source.splitlines():
            if line_fragment in line:
                line += f"  # repro-lint: disable={rule_id} -- fixture test"
            out.append(line)
        return "\n".join(out) + "\n"

    return transform


def test_disable_comment_silences_the_rule(tmp_path):
    findings = lint_fixture(
        tmp_path,
        "rl002_fail",
        select=["RL002"],
        transform=lambda s: _suppress("for _ in range(max_iter):", "RL002")(
            _suppress("while f(hi) < 0.0", "RL002")(s)
        ),
    )
    assert findings == [], [f.render() for f in findings]


def test_disable_comment_is_rule_scoped(tmp_path):
    """Disabling a *different* rule on the line must not suppress RL002."""
    findings = lint_fixture(
        tmp_path,
        "rl002_fail",
        select=["RL002"],
        transform=_suppress("for _ in range(max_iter):", "RL001"),
    )
    assert len(findings) == EXPECTED_FAIL_COUNTS["RL002"]


def test_disable_comment_is_line_scoped(tmp_path):
    """Suppressing one loop leaves the other loop's finding intact."""
    findings = lint_fixture(
        tmp_path,
        "rl002_fail",
        select=["RL002"],
        transform=_suppress("for _ in range(max_iter):", "RL002"),
    )
    assert len(findings) == 1
    assert findings[0].rule == "RL002"
    # The survivor is the while loop (the transform leaves line numbers alone).
    lines = (FIXTURES / "rl002_fail.py").read_text().splitlines()
    assert lines[findings[0].line - 1].lstrip().startswith("while ")


# ---------------------------------------------------------------------------
# RL003 specifics
# ---------------------------------------------------------------------------


def test_rl003_catches_field_removed_from_payload(tmp_path):
    """Acceptance test: drop a field from the scratch SweepTask.payload()."""

    def remove_payload_line(source):
        assert '"extra_knob": self.extra_knob,' in source
        return source.replace('            "extra_knob": self.extra_knob,\n', "")

    findings = lint_fixture(
        tmp_path, "rl003_pass", select=["RL003"], transform=remove_payload_line
    )
    assert len(findings) == 1
    assert findings[0].rule == "RL003"
    assert "extra_knob" in findings[0].message
    assert "CACHE_VERSION" in findings[0].message


def test_rl003_fail_names_both_failure_modes(tmp_path):
    findings = lint_fixture(tmp_path, "rl003_fail", select=["RL003"])
    messages = " | ".join(f.message for f in findings)
    assert "extra_knob" in messages
    assert "RoundLoopConfig" in messages


def test_rl003_allowlisted_field_is_quiet(tmp_path):
    """`key` never enters payload() in the pass fixture, by allowlist."""
    source = (FIXTURES / "rl003_pass.py").read_text()
    assert '"key"' not in source.split("def payload")[1].split("@dataclass")[0]
    findings = lint_fixture(tmp_path, "rl003_pass", select=["RL003"])
    assert findings == []


# ---------------------------------------------------------------------------
# RL007 specifics
# ---------------------------------------------------------------------------


def test_rl007_detects_renamed_addressing_functions(tmp_path):
    """A store module with every watched function renamed away is reported."""
    target = tmp_path / "src" / "repro" / "store" / "jsonstore.py"
    target.parent.mkdir(parents=True)
    target.write_text("def path_of(digest):\n    return digest[:2]\n")
    findings = lint_paths([target], root=tmp_path, select=["RL007"])
    assert len(findings) == 1
    assert "rename" in findings[0].message


def test_rl007_out_of_scope_outside_store(tmp_path):
    """The same code is not RL007's business outside src/repro/store/."""
    findings = lint_fixture(
        tmp_path, "rl007_fail", dest="src/repro/experiments", select=["RL007"]
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Path scoping
# ---------------------------------------------------------------------------


def test_rl004_pass_fixture_fires_outside_perf(tmp_path):
    """The exact same code is a finding when it leaves repro.perf."""
    findings = lint_fixture(
        tmp_path, "rl004_pass", dest="src/repro/solvers", select=["RL004"]
    )
    assert len(findings) == 4  # the from-time import + three resolved calls
    assert all(f.rule == "RL004" for f in findings)


def test_rules_out_of_scope_outside_src_repro(tmp_path):
    """A file outside src/repro/ is not checked by the path-scoped rules."""
    findings = lint_fixture(tmp_path, "rl001_fail", dest="scripts")
    assert findings == []


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------


def test_syntax_error_is_reported_not_raised(tmp_path):
    target = tmp_path / "src" / "repro" / "broken.py"
    target.parent.mkdir(parents=True)
    target.write_text("def broken(:\n    pass\n")
    findings = lint_paths([target], root=tmp_path)
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_ID


def test_parse_errors_are_not_suppressible(tmp_path):
    target = tmp_path / "src" / "repro" / "broken.py"
    target.parent.mkdir(parents=True)
    target.write_text("def broken(:  # repro-lint: disable=RL000\n    pass\n")
    findings = lint_paths([target], root=tmp_path)
    assert [f.rule for f in findings] == [PARSE_ERROR_ID]


def test_unknown_rule_id_is_an_error(tmp_path):
    from tools.lint import LintError

    with pytest.raises(LintError, match="RL999"):
        lint_fixture(tmp_path, "rl001_pass", select=["RL999"])


def test_every_rule_has_id_name_summary():
    rules = all_rules()
    assert sorted(rule.id for rule in rules) == list(RULE_IDS)
    for rule in rules:
        assert rule.name and rule.summary


# ---------------------------------------------------------------------------
# CLI + end-to-end
# ---------------------------------------------------------------------------


def _run_cli(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "tools.lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
    )


def test_cli_clean_tree_exits_zero(tmp_path):
    target = tmp_path / "src" / "repro" / "ok.py"
    target.parent.mkdir(parents=True)
    target.write_text((FIXTURES / "rl001_pass.py").read_text())
    proc = _run_cli("--root", str(tmp_path), str(target))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_cli_findings_exit_one_and_json_is_structured(tmp_path):
    target = tmp_path / "src" / "repro" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text((FIXTURES / "rl001_fail.py").read_text())
    proc = _run_cli("--root", str(tmp_path), "--format", "json", str(target))
    assert proc.returncode == 1
    findings = json.loads(proc.stdout)
    assert len(findings) == EXPECTED_FAIL_COUNTS["RL001"]
    assert {f["rule"] for f in findings} == {"RL001"}
    assert all({"path", "line", "col", "message"} <= set(f) for f in findings)


def test_cli_unknown_rule_exits_two():
    proc = _run_cli("--select", "RL999", "tools/lint/fixtures/rl001_pass.py")
    assert proc.returncode == 2
    assert "RL999" in proc.stderr


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in RULE_IDS:
        assert rule_id in proc.stdout


def test_repro_cli_lint_subcommand(capfd):
    from repro.cli import main

    assert main(["lint"]) == 0
    assert "0 findings" in capfd.readouterr().out


def test_src_tree_is_clean_end_to_end():
    """The shipped src/ tree passes its own linter — the PR's bootstrap gate."""
    findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# External tools (exercised fully in CI; skipped where not installed)
# ---------------------------------------------------------------------------


def test_ruff_clean_when_available():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed (CI's static-analysis job runs it)")
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "tools"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean_when_available():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed (CI's static-analysis job runs it)")
    proc = subprocess.run(
        ["mypy"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
