"""Tests for the perf subsystem: stage timers, solver instrumentation and
the ``repro bench`` report/compare machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocator import AllocatorConfig, ResourceAllocator
from repro.core.problem import JointProblem, ProblemWeights
from repro.core.sum_of_ratios import SumOfRatiosSolver
from repro.perf import bench
from repro.perf.timers import StageTimings, active_collector, collect_timings, stage


# -- StageTimings / stage / collect_timings ----------------------------------

def test_stage_timings_accumulates_seconds_and_counts():
    timings = StageTimings()
    timings.add("sp1", 0.5)
    timings.add("sp1", 0.25)
    timings.add("sp2", 1.0, count=3)
    assert timings.total("sp1") == pytest.approx(0.75)
    assert timings.counts["sp1"] == 2
    assert timings.counts["sp2"] == 3
    assert timings.total("missing") == 0.0
    assert timings.as_dict() == pytest.approx({"sp1": 0.75, "sp2": 1.0})


def test_stage_records_into_explicit_collector():
    timings = StageTimings()
    with stage("work", timings):
        pass
    assert timings.total("work") >= 0.0
    assert timings.counts["work"] == 1


def test_stage_records_into_ambient_collector():
    with collect_timings() as ambient:
        with stage("inner"):
            pass
    assert "inner" in ambient.seconds
    assert active_collector() is None


def test_stage_records_into_both_collectors_without_double_count():
    local = StageTimings()
    with collect_timings() as ambient:
        with stage("dual", local):
            pass
        # The same collector as explicit target must not be charged twice.
        with collect_timings(local):
            with stage("self", local):
                pass
    assert ambient.counts["dual"] == 1
    assert local.counts["dual"] == 1
    assert local.counts["self"] == 1


def test_stage_without_any_collector_is_a_noop():
    with stage("untracked"):
        pass  # nothing to assert beyond "does not raise"


def test_collect_timings_nesting_restores_previous_collector():
    with collect_timings() as outer:
        with collect_timings() as inner:
            with stage("x"):
                pass
        with stage("y"):
            pass
    assert "x" in inner.seconds and "x" not in outer.seconds
    assert "y" in outer.seconds


def test_merge_folds_collectors_and_mappings():
    a = StageTimings()
    a.add("s", 1.0)
    b = StageTimings()
    b.add("s", 2.0)
    a.merge(b)
    a.merge({"t": 3.0})
    assert a.total("s") == pytest.approx(3.0)
    assert a.total("t") == pytest.approx(3.0)


# -- solver instrumentation ---------------------------------------------------

def test_allocation_result_carries_stage_timings_and_inner_iterations(tiny_system):
    problem = JointProblem(tiny_system, ProblemWeights(energy=0.5, time=0.5))
    result = ResourceAllocator(AllocatorConfig(max_iterations=5)).solve(problem)
    for name in ("algorithm2", "sp1", "sp2"):
        assert result.timings.get(name, 0.0) > 0.0
    assert result.inner_iterations > 0
    summary = result.summary()
    assert summary["inner_iterations"] == float(result.inner_iterations)


def test_delay_only_solve_still_reports_timings(tiny_system):
    problem = JointProblem(tiny_system, ProblemWeights(energy=0.0, time=1.0))
    result = ResourceAllocator().solve(problem)
    assert result.timings.get("algorithm2", 0.0) > 0.0
    assert result.inner_iterations == 0


# -- SumOfRatiosSolver warm-start API ----------------------------------------

def _sp2_inputs(system):
    n = system.num_devices
    power = system.max_power_w.copy()
    bandwidth = np.full(n, system.total_bandwidth_hz * 0.5 / n)
    rates = system.rates_bps(power, bandwidth)
    min_rate = 0.5 * rates
    return min_rate, power, bandwidth


def test_initial_beta_nu_pair_converges_to_same_solution(tiny_system):
    solver = SumOfRatiosSolver(tiny_system, 0.5)
    min_rate, power, bandwidth = _sp2_inputs(tiny_system)
    reference = solver.solve(min_rate, power, bandwidth)
    seeded = solver.solve(
        min_rate,
        power,
        bandwidth,
        initial_beta=reference.beta,
        initial_nu=reference.nu,
    )
    assert seeded.converged
    assert seeded.iterations <= reference.iterations
    assert seeded.communication_energy_j == pytest.approx(
        reference.communication_energy_j, rel=1e-5
    )


def test_initial_beta_without_nu_is_rejected(tiny_system):
    solver = SumOfRatiosSolver(tiny_system, 0.5)
    min_rate, power, bandwidth = _sp2_inputs(tiny_system)
    with pytest.raises(ValueError, match="together"):
        solver.solve(min_rate, power, bandwidth, initial_beta=np.ones_like(power))


def test_invalid_initial_pair_shapes_rejected(tiny_system):
    solver = SumOfRatiosSolver(tiny_system, 0.5)
    min_rate, power, bandwidth = _sp2_inputs(tiny_system)
    with pytest.raises(ValueError, match="per device"):
        solver.solve(
            min_rate,
            power,
            bandwidth,
            initial_beta=np.ones(2),
            initial_nu=np.ones(2),
        )


def test_mu_hint_preserves_the_solution_trajectory(tiny_system):
    solver = SumOfRatiosSolver(tiny_system, 0.5)
    min_rate, power, bandwidth = _sp2_inputs(tiny_system)
    reference = solver.solve(min_rate, power, bandwidth)
    hinted = solver.solve(min_rate, power, bandwidth, mu_hint=0.0)
    assert hinted.iterations == reference.iterations
    assert hinted.communication_energy_j == pytest.approx(
        reference.communication_energy_j, rel=1e-8
    )
    np.testing.assert_allclose(hinted.power_w, reference.power_w, rtol=1e-7)
    np.testing.assert_allclose(hinted.bandwidth_hz, reference.bandwidth_hz, rtol=1e-7)


def test_warm_hints_round_trip_through_the_allocator(tiny_system):
    problem = JointProblem(tiny_system, ProblemWeights(energy=0.5, time=0.5))
    cold = ResourceAllocator().solve(problem)
    assert cold.warm_hints.get("mu", 0.0) > 0.0
    warm = ResourceAllocator().solve(problem, warm_hints=cold.warm_hints)
    assert warm.iterations == cold.iterations
    assert warm.inner_iterations == cold.inner_iterations
    assert warm.objective == pytest.approx(cold.objective, rel=1e-8)


# -- bench report & compare ---------------------------------------------------

def _report(**metric_overrides):
    metrics = {
        "cold_wall_s": 2.0,
        "warm_wall_s": 1.0,
        "scalar_wall_s": 5.0,
        "batch_wall_s": 0.8,
        "warm_wall_speedup": 2.0,
        "batch_wall_speedup": 2.5,
        "batch_fill": 1.0,
        "batch_parity_max_rel_dev": 0.0,
        "backend_sp2_speedup": 3.0,
        "cold_outer_iterations": 100.0,
        "warm_outer_iterations": 100.0,
        "cold_inner_iterations": 700.0,
        "warm_inner_iterations": 700.0,
        "parity_max_rel_dev": 1e-9,
        "backend_parity_max_rel_dev": 1e-12,
        "store_read_speedup": 2.5,
        "store_parity_max_rel_dev": 0.0,
    }
    metrics.update(metric_overrides)
    return {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "label": "TEST",
        "mode": "quick",
        "metrics": metrics,
        "tracked": {
            "cold_inner_iterations": "lower",
            "warm_wall_speedup": "higher",
        },
        "floors": {"warm_wall_speedup": 1.3},
        "parity_tol": 1e-6,
        "backend_parity_tol": 1e-8,
    }


def test_compare_reports_passes_on_identical_reports():
    base = _report()
    assert bench.compare_reports(_report(), base) == []


def test_compare_reports_flags_tracked_regression():
    base = _report()
    worse = _report(cold_inner_iterations=900.0)
    problems = bench.compare_reports(worse, base)
    assert any("cold_inner_iterations" in p for p in problems)


def test_compare_reports_allows_regressions_within_tolerance():
    base = _report()
    slightly_worse = _report(cold_inner_iterations=750.0)
    assert bench.compare_reports(slightly_worse, base, tolerance=0.2) == []


def test_compare_reports_enforces_speedup_floor_and_parity():
    base = _report()
    slow = _report(warm_wall_speedup=1.1)
    assert any("floor" in p for p in bench.compare_reports(slow, base))
    broken = _report(parity_max_rel_dev=1e-3)
    assert any("parity" in p for p in bench.compare_reports(broken, base))


def test_compare_reports_enforces_backend_floor_and_parity():
    base = _report()
    slow = _report(backend_sp2_speedup=1.5)
    assert any(
        "backend_sp2_speedup" in p and "floor" in p
        for p in bench.compare_reports(slow, base)
    )
    # The scalar/vector gate is far tighter than the warm/cold one: 1e-9
    # passes the 1e-6 warm tolerance but must fail the 1e-8 backend gate...
    broken = _report(backend_parity_max_rel_dev=1e-7)
    assert any("backend parity" in p for p in bench.compare_reports(broken, base))
    # ...and a NaN (structurally different tables) must fail, not pass.
    nan = _report(backend_parity_max_rel_dev=float("nan"))
    assert any("backend parity" in p for p in bench.compare_reports(nan, base))


def test_compare_reports_enforces_batch_floor_and_exact_parity():
    base = _report()
    # The floor is 2.0 with the wall-speedup slack (0.95): 1.85 must fail...
    slow = _report(batch_wall_speedup=1.85)
    assert any(
        "batch_wall_speedup" in p and "floor" in p
        for p in bench.compare_reports(slow, base)
    )
    # ...while 1.95 sits inside the slack and passes.
    within_slack = _report(batch_wall_speedup=1.95)
    assert not any(
        "batch_wall_speedup" in p for p in bench.compare_reports(within_slack, base)
    )
    # The batched path is bit-identical by construction: any deviation at
    # all (or a NaN from structurally different tables) fails the gate.
    broken = _report(batch_parity_max_rel_dev=1e-15)
    assert any("batched" in p for p in bench.compare_reports(broken, base))
    nan = _report(batch_parity_max_rel_dev=float("nan"))
    assert any("batched" in p for p in bench.compare_reports(nan, base))


def test_compare_reports_enforces_store_floor_and_exact_parity():
    base = _report()
    # The floor is 1.2 with the wall-speedup slack (0.85): 1.0 must fail...
    slow = _report(store_read_speedup=1.0)
    assert any(
        "store_read_speedup" in p and "floor" in p
        for p in bench.compare_reports(slow, base)
    )
    # ...while 1.1 sits inside the slack and passes.
    within_slack = _report(store_read_speedup=1.1)
    assert not any(
        "store_read_speedup" in p
        for p in bench.compare_reports(within_slack, base)
    )
    # Both backends round-trip losslessly, so the parity gate is exact:
    # any deviation at all (or a NaN from a structural mismatch) fails.
    broken = _report(store_parity_max_rel_dev=1e-15)
    assert any("result-store" in p for p in bench.compare_reports(broken, base))
    nan = _report(store_parity_max_rel_dev=float("nan"))
    assert any("result-store" in p for p in bench.compare_reports(nan, base))
    # A schema-4 baseline (no store metrics) can still be compared against,
    # but the current report must carry the floor metric.
    missing = _report()
    del missing["metrics"]["store_read_speedup"]
    assert any(
        "store_read_speedup" in p and "missing" in p
        for p in bench.compare_reports(missing, base)
    )


def test_compare_reports_warm_floor_allows_scheduler_noise():
    base = _report()
    # Drop the fixture's stricter 1.3 override so the built-in 1.0 floor
    # (warm hints are a vector-path no-op, warm == cold work) is exercised:
    # with warm's wide noise slack, 0.90 passes and 0.80 fails.
    base["floors"] = {}
    # (also drop the fixture's tracked-ratio entry: this test is about the
    # absolute floor, not the baseline-relative regression check)
    base["tracked"] = {"cold_inner_iterations": "lower"}
    noisy = _report(warm_wall_speedup=0.90)
    assert not any(
        "warm_wall_speedup" in p for p in bench.compare_reports(noisy, base)
    )
    slow = _report(warm_wall_speedup=0.80)
    assert any(
        "warm_wall_speedup" in p and "floor" in p
        for p in bench.compare_reports(slow, base)
    )


def test_compare_reports_cross_mode_checks_floors_only():
    base = _report()
    other_mode = _report(cold_inner_iterations=10_000.0)
    other_mode["mode"] = "standard"
    # Iteration counts are suite-scale dependent: not compared across modes.
    assert bench.compare_reports(other_mode, base) == []


def test_bench_config_scales_with_quick_flag():
    quick = bench.bench_config(quick=True)
    standard = bench.bench_config(quick=False)
    assert len(quick.tasks()) < len(standard.tasks())
    assert not quick.include_benchmark and not standard.include_benchmark


def test_write_and_load_report_round_trip(tmp_path):
    report = _report()
    path = bench.write_report(report, tmp_path / "BENCH_TEST.json")
    assert bench.load_report(path) == report


# -- closed-loop FL bench additions (schema 3) -------------------------------

def test_flat_parity_on_matching_and_broken_trajectories():
    left = {"r001_accuracy": 0.5, "r001_elapsed_s": 1.0}
    assert bench._flat_parity(left, dict(left)) == 0.0
    shifted = {"r001_accuracy": 0.5, "r001_elapsed_s": 1.1}
    assert bench._flat_parity(left, shifted) == pytest.approx(0.1)
    assert bench._flat_parity(left, {"r001_accuracy": 0.5}) == float("inf")
    assert (
        bench._flat_parity(left, {"r001_accuracy": 0.5, "r001_elapsed_s": float("nan")})
        == float("inf")
    )
    both_nan = {"a": float("nan")}
    assert bench._flat_parity(both_nan, dict(both_nan)) == 0.0


def test_fl_bench_config_scales_with_quick_flag():
    quick = bench.fl_bench_config(quick=True)
    standard = bench.fl_bench_config(quick=False)
    assert quick.rounds < standard.rounds
    assert quick.scenario["num_devices"] < standard.scenario["num_devices"]
    # The benchmarked loop must exercise the allocation-aware selection.
    assert quick.selection == "deadline-k"


def test_compare_reports_flags_fl_parity_breach():
    current = _report(
        fl_warm_parity_max_rel_dev=1e-3, fl_backend_parity_max_rel_dev=0.0
    )
    baseline = _report()
    problems = bench.compare_reports(current, baseline)
    assert any("fl_warm_parity_max_rel_dev" in p for p in problems)

    current = _report(
        fl_warm_parity_max_rel_dev=0.0, fl_backend_parity_max_rel_dev=1e-3
    )
    problems = bench.compare_reports(current, baseline)
    assert any("fl_backend_parity_max_rel_dev" in p for p in problems)


def test_compare_reports_tolerates_reports_without_fl_metrics():
    # A schema-2 report (no FL suite) must still compare cleanly.
    assert bench.compare_reports(_report(), _report()) == []
