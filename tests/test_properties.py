"""Property-based tests (hypothesis) on the core models and solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

pytestmark = pytest.mark.hypothesis

from repro import constants
from repro.solvers import (
    project_box,
    project_simplex,
    solve_box_budget_lp,
    solve_x_log_x,
)
from repro.solvers.waterfilling import power_waterfilling
from repro.wireless.rate import required_power_for_rate, shannon_rate

N0 = constants.NOISE_PSD_W_PER_HZ

positive_floats = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(
    power=st.floats(min_value=1e-6, max_value=0.1),
    bandwidth=st.floats(min_value=1e3, max_value=2e7),
    gain=st.floats(min_value=1e-14, max_value=1e-7),
)
def test_shannon_rate_is_positive_and_bounded_by_capacity_limit(power, bandwidth, gain):
    rate = float(shannon_rate(power, bandwidth, gain, N0))
    assert rate > 0.0
    # The rate never exceeds the infinite-bandwidth limit g p / (N0 ln 2).
    assert rate <= gain * power / (N0 * np.log(2.0)) * (1 + 1e-9)


@settings(max_examples=60, deadline=None)
@given(
    power=st.floats(min_value=1e-5, max_value=0.1),
    gain=st.floats(min_value=1e-13, max_value=1e-8),
    b1=st.floats(min_value=1e3, max_value=1e7),
    scale=st.floats(min_value=1.01, max_value=10.0),
)
def test_shannon_rate_is_monotone_in_bandwidth(power, gain, b1, scale):
    r1 = float(shannon_rate(power, b1, gain, N0))
    r2 = float(shannon_rate(power, b1 * scale, gain, N0))
    assert r2 >= r1


@settings(max_examples=60, deadline=None)
@given(
    rate=st.floats(min_value=1e3, max_value=5e6),
    bandwidth=st.floats(min_value=1e4, max_value=2e7),
    gain=st.floats(min_value=1e-13, max_value=1e-8),
)
def test_required_power_round_trips_through_the_rate(rate, bandwidth, gain):
    power = float(required_power_for_rate(rate, bandwidth, gain, N0))
    achieved = float(shannon_rate(power, bandwidth, gain, N0))
    assert np.isclose(achieved, rate, rtol=1e-6)


@settings(max_examples=80, deadline=None)
@given(rhs=st.floats(min_value=0.0, max_value=1e6))
def test_solve_x_log_x_inverts_its_equation(rhs):
    x = float(solve_x_log_x(rhs))
    assert x >= 1.0
    assert np.isclose(x * np.log(x) - x + 1.0, rhs, rtol=1e-6, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=12),
        elements=st.floats(min_value=-50.0, max_value=50.0),
    ),
    total=st.floats(min_value=0.1, max_value=100.0),
)
def test_simplex_projection_always_feasible(values, total):
    projected = project_simplex(values, total=total)
    assert np.all(projected >= -1e-9)
    assert np.isclose(projected.sum(), total, rtol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=12),
        elements=st.floats(min_value=-10.0, max_value=10.0),
    ),
    lo=st.floats(min_value=-5.0, max_value=0.0),
    width=st.floats(min_value=0.1, max_value=10.0),
)
def test_box_projection_lands_inside_the_box(values, lo, width):
    hi = lo + width
    projected = project_box(values, lo, hi)
    assert np.all(projected >= lo - 1e-12)
    assert np.all(projected <= hi + 1e-12)
    # Projection is idempotent.
    assert np.allclose(project_box(projected, lo, hi), projected)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
    budget_extra=st.floats(min_value=0.0, max_value=10.0),
)
def test_box_budget_lp_feasibility_properties(n, seed, budget_extra):
    rng = np.random.default_rng(seed)
    costs = rng.normal(size=n)
    lower = rng.uniform(0.0, 1.0, size=n)
    upper = lower + rng.uniform(0.0, 2.0, size=n)
    budget = float(lower.sum() + budget_extra)
    result = solve_box_budget_lp(costs, lower, upper, budget)
    assert np.all(result.x >= lower - 1e-9)
    assert np.all(result.x <= upper + 1e-9)
    assert result.x.sum() <= budget + 1e-6
    # The objective is never worse than staying at the lower bounds.
    assert result.objective <= float(costs @ lower) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
    total=st.floats(min_value=0.5, max_value=50.0),
)
def test_waterfilling_allocation_properties(n, seed, total):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.1, 3.0, size=n)
    b = rng.uniform(0.0, 2.0, size=n)
    x, eta = power_waterfilling(a, b, total=total, exponent=2.0 / 3.0)
    assert np.all(x > 0.0)
    assert np.isclose(x.sum(), total, rtol=1e-6)
    assert eta >= b.max()
