"""Property-based tests on the end-to-end resource allocation.

These are slower than the solver-level properties, so the example counts are
kept small; they assert the invariants that must hold for *any* random drop
and weight choice: feasibility of the returned allocation, consistency of
the reported metrics, and dominance over the static allocation in the
weighted objective.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JointProblem, ProblemWeights, ResourceAllocator, build_paper_scenario
from repro.baselines import static_equal_allocation
from repro.core.allocator import AllocatorConfig

pytestmark = pytest.mark.hypothesis

_FAST = AllocatorConfig(max_iterations=4)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=200),
    w1=st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]),
    num_devices=st.integers(min_value=3, max_value=10),
)
def test_allocation_is_always_feasible_and_consistent(seed, w1, num_devices):
    system = build_paper_scenario(num_devices=num_devices, seed=seed)
    problem = JointProblem(system, ProblemWeights.from_energy_weight(w1))
    result = ResourceAllocator(_FAST).solve(problem)

    allocation = result.allocation
    # Constraint (8a)-(8c): every variable inside its box, budget respected.
    assert np.all(allocation.power_w <= system.max_power_w * (1 + 1e-6))
    assert np.all(allocation.power_w >= system.min_power_w * (1 - 1e-6) - 1e-12)
    assert np.all(allocation.frequency_hz <= system.max_frequency_hz * (1 + 1e-6))
    assert np.all(allocation.frequency_hz >= system.min_frequency_hz * (1 - 1e-6))
    assert allocation.bandwidth_hz.sum() <= system.total_bandwidth_hz * (1 + 1e-6)

    # Reported metrics must be self-consistent with the allocation.
    assert np.isclose(result.energy_j, allocation.total_energy_j(system), rtol=1e-9)
    assert np.isclose(result.completion_time_s, allocation.total_time_s(system), rtol=1e-9)
    assert np.isclose(
        result.objective,
        w1 * result.energy_j + (1 - w1) * result.completion_time_s,
        rtol=1e-9,
    )

    # The optimised allocation never loses to the static one on the objective.
    static = static_equal_allocation(problem)
    assert result.objective <= static.objective * (1 + 1e-9)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_energy_weight_sweep_is_monotone_in_energy(seed):
    system = build_paper_scenario(num_devices=6, seed=seed)
    allocator = ResourceAllocator(_FAST)
    energies = []
    for w1 in (0.2, 0.8):
        problem = JointProblem(system, ProblemWeights.from_energy_weight(w1))
        energies.append(allocator.solve(problem).energy_j)
    # More weight on energy never yields more energy consumption.
    assert energies[1] <= energies[0] * (1 + 1e-6)
