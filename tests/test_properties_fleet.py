"""Property-based tests on the dynamic-fleet layer (batteries and churn).

These lock down the invariants the round loop leans on for *any* draw:
battery charge is monotone under draws and the state of charge never
leaves [0, 1]; a draw beyond the remaining charge raises exactly at the
boundary; churn resolution is seed-deterministic, keeps every event
consistent (arrive only while absent, depart only while present), never
empties the fleet, and its per-round bookkeeping reconstructs the exact
present set; and a device that departed is never selected by the round
loop while it stays absent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.battery import Battery, BatteryDrainedError
from repro.fl.churn import ChurnSchedule, resolve_churn
from repro.fl.roundloop import RoundLoopConfig, run_round_loop

pytestmark = pytest.mark.hypothesis


# -- battery invariants ------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    capacity=st.floats(min_value=1e-3, max_value=1e3),
    fractions=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12
    ),
)
def test_battery_drain_is_monotone_and_soc_stays_in_unit_interval(
    capacity, fractions
):
    battery = Battery(capacity_j=capacity)
    previous = battery.charge_j
    for fraction in fractions:
        draw = fraction * battery.charge_j
        battery.draw(draw)
        assert battery.charge_j <= previous + 1e-12
        assert 0.0 <= battery.state_of_charge <= 1.0
        previous = battery.charge_j
    assert battery.drawn_j == pytest.approx(capacity - battery.charge_j, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.floats(min_value=1e-3, max_value=1e3),
    excess=st.floats(min_value=1e-6, max_value=10.0),
)
def test_battery_raises_exactly_beyond_exhaustion(capacity, excess):
    battery = Battery(capacity_j=capacity)
    # Draining the exact remaining charge is always allowed...
    battery.draw(battery.charge_j)
    assert battery.state_of_charge == pytest.approx(0.0, abs=1e-12)
    # ...but any draw beyond the (now zero) charge raises.
    with pytest.raises(BatteryDrainedError):
        battery.draw(excess * capacity)


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.floats(min_value=1e-3, max_value=1e3),
    spend=st.floats(min_value=0.0, max_value=1.0),
    topup=st.floats(min_value=0.0, max_value=2.0),
)
def test_battery_recharge_never_exceeds_capacity(capacity, spend, topup):
    battery = Battery(capacity_j=capacity)
    battery.draw(spend * capacity)
    battery.recharge(topup * capacity)
    assert 0.0 <= battery.state_of_charge <= 1.0
    battery.recharge()
    assert battery.state_of_charge == pytest.approx(1.0)


# -- churn invariants --------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    num_devices=st.integers(min_value=1, max_value=16),
    rounds=st.integers(min_value=1, max_value=12),
    arrive=st.floats(min_value=0.0, max_value=1.0),
    depart=st.floats(min_value=0.0, max_value=1.0),
    absent=st.floats(min_value=0.0, max_value=0.99),
)
def test_poisson_churn_events_are_consistent_and_never_empty_the_fleet(
    seed, num_devices, rounds, arrive, depart, absent
):
    spec = {
        "mode": "poisson",
        "arrive_rate": arrive,
        "depart_rate": depart,
        "initial_absent_fraction": absent,
    }
    resolved = resolve_churn(
        spec, num_devices=num_devices, rounds=rounds, seed=seed
    )
    present = set(resolved.initial_present)
    assert present, "the round-1 fleet must never be empty"
    assert present <= set(range(num_devices))
    for round_index in range(2, rounds + 1):
        arrivals, departures = resolved.events_for_round(round_index)
        assert not set(arrivals) & present, "arrivals must have been absent"
        assert set(departures) <= present, "departures must have been present"
        assert not set(arrivals) & set(departures)
        present |= set(arrivals)
        present -= set(departures)
        assert present, f"round {round_index} would leave the fleet empty"
    # The bookkeeping helper reconstructs exactly this trace.
    trace = resolved.present_through()
    assert len(trace) == rounds
    assert trace[-1] == tuple(sorted(present))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    num_devices=st.integers(min_value=2, max_value=12),
    rounds=st.integers(min_value=2, max_value=10),
    arrive=st.floats(min_value=0.0, max_value=1.0),
    depart=st.floats(min_value=0.0, max_value=1.0),
)
def test_same_seed_yields_identical_churn_event_stream(
    seed, num_devices, rounds, arrive, depart
):
    spec = {
        "mode": "poisson",
        "arrive_rate": arrive,
        "depart_rate": depart,
        "initial_absent_fraction": 0.3,
    }
    first = resolve_churn(spec, num_devices=num_devices, rounds=rounds, seed=seed)
    second = resolve_churn(spec, num_devices=num_devices, rounds=rounds, seed=seed)
    assert first == second
    assert first.present_through() == second.present_through()


@settings(max_examples=15, deadline=None)
@given(
    initial_absent=st.lists(
        st.integers(min_value=0, max_value=5), max_size=5, unique=True
    ),
)
def test_events_mode_round_one_fleet_is_universe_minus_absent(initial_absent):
    spec = {"mode": "events", "initial_absent": initial_absent}
    if len(set(initial_absent)) == 6:
        with pytest.raises(Exception):
            resolve_churn(spec, num_devices=6, rounds=3, seed=0)
        return
    resolved = resolve_churn(spec, num_devices=6, rounds=3, seed=0)
    assert resolved.initial_present == tuple(
        sorted(set(range(6)) - set(initial_absent))
    )


# -- round-loop-level fleet invariants --------------------------------------
_SCENARIO = {"family": "paper", "num_devices": 5, "seed": 3}


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30))
def test_departed_devices_are_never_selected_while_absent(seed):
    churn = {
        "mode": "events",
        "initial_absent": [4],
        "events": {2: {"depart": [0], "arrive": [4]}, 3: {"depart": [1]}},
    }
    config = RoundLoopConfig(
        scenario={**_SCENARIO, "seed": seed},
        rounds=3,
        local_iterations=2,
        samples_per_client=12,
        seed=seed,
        churn=churn,
        allocator=_fast_allocator(),
    )
    report = run_round_loop(config)
    expected_present = resolve_churn(
        churn, num_devices=5, rounds=3, seed=seed
    ).present_through()
    for record, present in zip(report.records, expected_present):
        assert set(record.selected) <= set(present)
        assert record.fleet_size == len(present)
    # Device 0 departs before round 2 and never returns.
    assert 0 not in report.records[1].selected
    assert 0 not in report.records[2].selected


def _fast_allocator():
    from repro.core.allocator import AllocatorConfig

    return AllocatorConfig(max_iterations=3)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30))
def test_round_loop_battery_soc_min_is_monotone_nonincreasing(seed):
    config = RoundLoopConfig(
        scenario={**_SCENARIO, "seed": seed},
        rounds=3,
        local_iterations=2,
        samples_per_client=12,
        seed=seed,
        battery={"capacity_j": 5.0},
        allocator=_fast_allocator(),
    )
    report = run_round_loop(config)
    socs = [r.battery_soc_min for r in report.records]
    assert all(0.0 <= s <= 1.0 for s in socs)
    assert all(a >= b - 1e-12 for a, b in zip(socs, socs[1:]))
