"""Property-based suite for the root-finding primitives (Hypothesis).

Four families of invariants, one per solver primitive:

* ``bisect_scalar`` / ``bisect_vector`` — the returned point stays inside
  the initial bracket, the residual there is root-small, lanes converge
  independently, and pathological inputs fail loudly
  (:class:`SolverError` for unbracketable intervals,
  :class:`ConvergenceError` for exhausted iteration budgets) instead of
  silently returning midpoints;
* ``expand_bracket`` / ``expand_bracket_vector`` — expansion always ends
  on a sign change, never moves ``lo``, and raises when no root exists in
  the expansion range;
* the Lambert helpers — ``W0`` satisfies its defining equation,
  ``solve_x_log_x`` / ``lambert_solve_vector`` return the unique root of
  ``x ln x - x + 1 = rhs`` (agreeing with each other — the vector variant
  is differential-tested against the scalar one), monotone in ``rhs``;
* ``power_waterfilling`` — the allocation lands exactly on the simplex,
  stays positive, satisfies the water-filling stationarity, and rejects
  invalid coefficients.

Run locally with ``pytest -m hypothesis``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ConvergenceError, SolverError
from repro.solvers import (
    bisect_scalar,
    bisect_vector,
    expand_bracket,
    expand_bracket_vector,
    lambert_solve_vector,
    lambert_w_principal,
    solve_x_log_x,
)
from repro.solvers.waterfilling import power_waterfilling

pytestmark = pytest.mark.hypothesis

finite = dict(allow_nan=False, allow_infinity=False)


# -- bisect_scalar ------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    root=st.floats(min_value=-50.0, max_value=50.0, **finite),
    width=st.floats(min_value=1e-3, max_value=100.0, **finite),
    offset=st.floats(min_value=0.0, max_value=1.0, **finite),
    slope=st.floats(min_value=1e-3, max_value=10.0, **finite),
)
def test_bisect_scalar_root_residual_and_bracket_invariant(root, width, offset, slope):
    lo = root - width * (offset + 1e-6)
    hi = root + width * (1.0 + 1e-6 - offset)
    func = lambda x: slope * (x - root) ** 3  # noqa: E731 — monotone, root known
    found = bisect_scalar(func, lo, hi, tol=1e-12)
    assert lo <= found <= hi
    assert found == pytest.approx(root, rel=1e-9, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    lo=st.floats(min_value=-10.0, max_value=10.0, **finite),
    width=st.floats(min_value=0.1, max_value=10.0, **finite),
    shift=st.floats(min_value=0.5, max_value=100.0, **finite),
)
def test_bisect_scalar_rejects_unbracketable_interval(lo, width, shift):
    hi = lo + width
    # Strictly positive on the whole interval: no root to bracket.
    func = lambda x: (x - lo) + shift  # noqa: E731
    with pytest.raises(SolverError, match="sign change"):
        bisect_scalar(func, lo, hi)


@settings(max_examples=20, deadline=None)
@given(root=st.floats(min_value=-5.0, max_value=5.0, **finite))
def test_bisect_scalar_raises_convergence_error_on_exhaustion(root):
    func = lambda x: x - root  # noqa: E731
    with pytest.raises(ConvergenceError, match="did not converge"):
        bisect_scalar(func, root - 10.0, root + 11.0, tol=1e-12, max_iter=3)


# -- bisect_vector ------------------------------------------------------------

roots_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=12),
    elements=st.floats(min_value=-20.0, max_value=20.0, **finite),
)


@settings(max_examples=60, deadline=None)
@given(roots=roots_arrays, spread=st.floats(min_value=0.1, max_value=50.0, **finite))
def test_bisect_vector_matches_per_lane_scalar_solution(roots, spread):
    lo = roots - spread
    hi = roots + spread * 1.7  # asymmetric on purpose
    func = lambda x: (x - roots) ** 3  # noqa: E731
    found = bisect_vector(func, lo, hi, tol=1e-12)
    assert found.shape == roots.shape
    assert np.all((lo <= found) & (found <= hi))
    np.testing.assert_allclose(found, roots, rtol=1e-9, atol=1e-9)
    # Differential check against the scalar solver, lane by lane.
    for lane in range(roots.shape[0]):
        scalar = bisect_scalar(
            lambda x: (x - roots[lane]) ** 3, lo[lane], hi[lane], tol=1e-12
        )
        assert found[lane] == pytest.approx(scalar, rel=1e-9, abs=1e-8)


@settings(max_examples=40, deadline=None)
@given(
    roots=roots_arrays,
    scales=st.floats(min_value=1e-3, max_value=1e3, **finite),
)
def test_bisect_vector_lanes_converge_independently(roots, scales):
    """Wildly different lane scales must not stop the narrow lanes early."""
    lo = roots - scales
    hi = roots + scales
    # One extra lane with a far wider bracket than the rest.
    lo = np.append(lo, roots[0] - 1e6)
    hi = np.append(hi, roots[0] + 1e6)
    all_roots = np.append(roots, roots[0])
    found = bisect_vector(lambda x: x - all_roots, lo, hi, tol=1e-10)
    np.testing.assert_allclose(found, all_roots, rtol=1e-7, atol=1e-6)


def test_bisect_vector_rejects_lane_without_sign_change():
    func = lambda x: np.where(np.arange(3) == 1, x**2 + 1.0, x)  # noqa: E731
    with pytest.raises(SolverError, match="index 1"):
        bisect_vector(func, np.full(3, -1.0), np.full(3, 1.0))


@settings(max_examples=20, deadline=None)
@given(roots=roots_arrays)
def test_bisect_vector_raises_convergence_error_on_exhaustion(roots):
    func = lambda x: x - roots  # noqa: E731
    with pytest.raises(ConvergenceError, match="did not converge"):
        bisect_vector(func, roots - 50.0, roots + 51.0, tol=1e-12, max_iter=2)


# -- bracket expansion --------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    root=st.floats(min_value=0.5, max_value=1e4, **finite),
    hi0=st.floats(min_value=1e-3, max_value=0.4, **finite),
)
def test_expand_bracket_finds_sign_change(root, hi0):
    func = lambda x: x - root  # noqa: E731
    lo, hi = expand_bracket(func, 0.0, hi0)
    assert lo == 0.0
    assert func(lo) <= 0.0 <= func(hi)


@settings(max_examples=40, deadline=None)
@given(
    roots=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=10),
        elements=st.floats(min_value=0.5, max_value=1e5, **finite),
    )
)
def test_expand_bracket_vector_brackets_every_lane(roots):
    func = lambda x: x - roots  # noqa: E731
    lo0 = np.zeros_like(roots)
    lo, hi = expand_bracket_vector(func, lo0, np.full_like(roots, 0.25))
    np.testing.assert_array_equal(lo, lo0)  # lo is never moved
    assert np.all(func(lo) <= 0.0)
    assert np.all(func(hi) >= 0.0)


def test_expand_bracket_vector_raises_when_no_root_in_range():
    func = lambda x: np.ones_like(x)  # noqa: E731 — no sign change anywhere
    with pytest.raises(SolverError, match="lane 0"):
        expand_bracket_vector(
            func, np.zeros(2), np.ones(2), max_expansions=5
        )


def test_expand_bracket_vector_freezes_already_bracketed_lanes():
    roots = np.array([0.1, 1e4])
    func = lambda x: x - roots  # noqa: E731
    lo, hi = expand_bracket_vector(func, np.zeros(2), np.array([1.0, 1.0]))
    assert hi[0] == 1.0  # already bracketed: untouched
    assert hi[1] >= 1e4


# -- Lambert helpers ----------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(z=st.floats(min_value=-1.0 / np.e, max_value=1e6, **finite))
def test_lambert_w_principal_satisfies_defining_equation(z):
    w = float(lambert_w_principal(z))
    assert w >= -1.0
    assert w * np.exp(w) == pytest.approx(z, rel=1e-8, abs=1e-10)


rhs_floats = st.floats(min_value=0.0, max_value=1e8, **finite)
# Below rhs ~ 1e-12 the root satisfies (x - 1)^2 / 2 = rhs with x - 1 under
# the ulp of 1.0: the residual is then pure round-off noise and the root is
# only defined up to its seed.  Cross-implementation agreement is asserted
# on the conditioned range; the residual bound covers the full range.
rhs_floats_conditioned = st.floats(min_value=1e-6, max_value=1e8, **finite)


@settings(max_examples=80, deadline=None)
@given(rhs=rhs_floats)
def test_solve_x_log_x_root_residual_bound(rhs):
    x = float(solve_x_log_x(rhs))
    assert x >= 1.0
    residual = x * np.log(x) - x + 1.0 - rhs
    assert abs(residual) <= 1e-8 * max(1.0, rhs)


@settings(max_examples=60, deadline=None)
@given(
    rhs=hnp.arrays(
        dtype=float,
        shape=st.tuples(
            st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=8)
        ),
        elements=rhs_floats,
    )
)
def test_lambert_solve_vector_residual_bound_on_batches(rhs):
    batched = lambert_solve_vector(rhs)
    assert batched.shape == rhs.shape
    assert np.all(batched >= 1.0)
    residual = batched * np.log(batched) - batched + 1.0 - rhs
    assert np.all(np.abs(residual) <= 1e-8 * np.maximum(1.0, rhs))


@settings(max_examples=60, deadline=None)
@given(
    rhs=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=16),
        elements=rhs_floats_conditioned,
    )
)
def test_lambert_solve_vector_matches_scalar_reference(rhs):
    batched = lambert_solve_vector(rhs)
    reference = solve_x_log_x(rhs)
    np.testing.assert_allclose(batched, reference, rtol=1e-10, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(
    rhs=rhs_floats_conditioned,
    factor=st.floats(min_value=1.01, max_value=100.0, **finite),
)
def test_lambert_solutions_are_monotone_in_rhs(rhs, factor):
    assert float(lambert_solve_vector(rhs * factor)) > float(
        lambert_solve_vector(rhs)
    ) * (1.0 - 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    rhs=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=8),
        elements=rhs_floats_conditioned,
    ),
    jitter=st.floats(min_value=0.5, max_value=2.0, **finite),
)
def test_lambert_solve_vector_seed_changes_work_not_answer(rhs, jitter):
    cold = lambert_solve_vector(rhs)
    seeded = lambert_solve_vector(rhs, x0=np.maximum(cold * jitter, 1.0))
    np.testing.assert_allclose(seeded, cold, rtol=1e-9, atol=1e-12)


def test_lambert_rejects_negative_rhs():
    with pytest.raises(ValueError, match="non-negative"):
        solve_x_log_x(-0.5)
    with pytest.raises(ValueError, match="non-negative"):
        lambert_solve_vector(np.array([0.5, -0.5]))


# -- water-filling ------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    a=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=10),
        elements=st.floats(min_value=1e-3, max_value=1e3, **finite),
    ),
    b_scale=st.floats(min_value=0.0, max_value=10.0, **finite),
    total=st.floats(min_value=1e-2, max_value=1e3, **finite),
    exponent=st.floats(min_value=0.2, max_value=0.8, **finite),
)
def test_power_waterfilling_simplex_and_stationarity(a, b_scale, total, exponent):
    rng = np.random.default_rng(0)
    b = b_scale * rng.random(a.shape[0])
    x, eta = power_waterfilling(a, b, total, exponent)
    assert np.all(x > 0.0)
    assert float(x.sum()) == pytest.approx(total, rel=1e-9)
    # KKT stationarity: q a x^(q-1) + b = eta on every component.
    gradient = exponent * a * x ** (exponent - 1.0) + b
    np.testing.assert_allclose(gradient, eta, rtol=1e-5)


def test_power_waterfilling_rejects_invalid_inputs():
    with pytest.raises(SolverError, match="positive"):
        power_waterfilling(np.array([1.0, -1.0]), np.zeros(2), 1.0, 0.5)
    with pytest.raises(ValueError, match="exponent"):
        power_waterfilling(np.ones(2), np.zeros(2), 1.0, 1.5)
    with pytest.raises(ValueError, match="total"):
        power_waterfilling(np.ones(2), np.zeros(2), -1.0, 0.5)
