"""Tests for the scenario builders."""

import numpy as np
import pytest

from repro import ScenarioConfig, build_paper_scenario, build_scenario
from repro import units


def test_paper_defaults():
    system = build_paper_scenario(num_devices=12, seed=0)
    assert system.num_devices == 12
    assert system.total_bandwidth_hz == pytest.approx(20e6)
    assert system.local_iterations == 10
    assert system.global_rounds == 400
    assert np.all(system.max_power_w == pytest.approx(units.dbm_to_watt(12.0)))
    assert np.all(system.num_samples == 500)
    assert system.channel_state is not None
    assert np.all(system.channel_state.distances_km <= 0.25 + 1e-12)


def test_seed_reproducibility():
    a = build_paper_scenario(num_devices=10, seed=5)
    b = build_paper_scenario(num_devices=10, seed=5)
    assert np.allclose(a.gains, b.gains)
    assert np.allclose(a.cycles_per_sample, b.cycles_per_sample)


def test_different_seeds_differ():
    a = build_paper_scenario(num_devices=10, seed=5)
    b = build_paper_scenario(num_devices=10, seed=6)
    assert not np.allclose(a.gains, b.gains)


def test_overrides_flow_through():
    system = build_paper_scenario(
        num_devices=8,
        seed=1,
        max_power_dbm=6.0,
        radius_km=1.0,
        local_iterations=30,
        global_rounds=100,
        total_bandwidth_hz=5e6,
    )
    assert np.all(system.max_power_w == pytest.approx(units.dbm_to_watt(6.0)))
    assert system.local_iterations == 30
    assert system.global_rounds == 100
    assert system.total_bandwidth_hz == pytest.approx(5e6)
    assert np.all(system.channel_state.distances_km <= 1.0 + 1e-12)


def test_total_samples_config():
    config = ScenarioConfig(num_devices=10, samples_per_device=None, total_samples=1000, seed=0)
    system = build_scenario(config)
    assert system.fleet.total_samples == 1000


def test_larger_radius_weakens_average_channel():
    near = build_paper_scenario(num_devices=200, seed=2, radius_km=0.1)
    far = build_paper_scenario(num_devices=200, seed=2, radius_km=1.5)
    assert np.median(far.gains) < np.median(near.gains)
