"""Tests for the pluggable scenario subsystem (specs, registry, families)."""

import numpy as np
import pytest

from repro import (
    ScenarioSpec,
    build_paper_scenario,
    build_scenario_spec,
    get_scenario_family,
    register_scenario_family,
    scenario_families,
)
from repro.core.allocator import AllocatorConfig
from repro.exceptions import ConfigurationError
from repro.experiments import SamplesConfig, SweepConfig, SweepRunner, run_samples_sweep
from repro.experiments.base import proposed_tasks
from repro.experiments.runner import task_hash
from repro.scenarios.spec import SCENARIO_SCHEMA_VERSION

BUILTIN_FAMILIES = ("paper", "cell-edge", "hotspot", "hetero-fleet", "indoor")

#: ``build_paper_scenario(num_devices=5, seed=123).gains`` as produced by the
#: pre-registry monolithic ``scenario.py`` — the refactor must keep the paper
#: recipe bit-identical so every published table still reproduces.
GOLDEN_PAPER_GAINS = (
    3.2700376088802994e-11,
    1.964299334287237e-12,
    1.0721629190638075e-09,
    7.33472816818876e-11,
    1.8999190319385155e-11,
)


# -- registry ----------------------------------------------------------------

def test_builtin_families_are_registered():
    assert set(BUILTIN_FAMILIES) <= set(scenario_families())


def test_unknown_family_error_lists_known_names():
    with pytest.raises(ConfigurationError, match="no-such-family") as excinfo:
        get_scenario_family("no-such-family")
    for name in BUILTIN_FAMILIES:
        assert name in str(excinfo.value)


def test_families_carry_description_and_defaults():
    for name in BUILTIN_FAMILIES:
        family = get_scenario_family(name)
        assert family.description
    assert get_scenario_family("paper").defaults["num_devices"] == 50
    assert get_scenario_family("hotspot").defaults["num_clusters"] == 3


def test_dotted_family_name_resolves_by_import():
    family = get_scenario_family("repro.scenarios.paper:paper_scenario")
    system = family.build(num_devices=4, seed=9)
    assert np.array_equal(system.gains, build_paper_scenario(num_devices=4, seed=9).gains)


def test_register_custom_family_roundtrip():
    @register_scenario_family("test-tiny", description="one-off test family")
    def tiny_scenario(**params):
        return build_paper_scenario(num_devices=3, seed=params.get("seed", 0))

    try:
        assert "test-tiny" in scenario_families()
        system = build_scenario_spec(ScenarioSpec("test-tiny", {"seed": 2}))
        assert system.num_devices == 3
    finally:
        from repro.scenarios import spec as spec_module

        spec_module._FAMILIES.pop("test-tiny", None)


# -- specs -------------------------------------------------------------------

def test_spec_from_mapping_defaults_to_paper():
    spec = ScenarioSpec.from_mapping({"num_devices": 7, "seed": 1})
    assert spec.family == "paper"
    assert spec.params == {"num_devices": 7, "seed": 1}
    assert spec.to_mapping() == {"family": "paper", "num_devices": 7, "seed": 1}


def test_spec_rejects_family_inside_params():
    with pytest.raises(ConfigurationError, match="family"):
        ScenarioSpec("paper", {"family": "hotspot"})


def test_invalid_family_params_raise_configuration_error():
    with pytest.raises(ConfigurationError, match="paper"):
        build_scenario_spec(ScenarioSpec("paper", {"not_a_knob": 1}))


# -- every family builds a valid, reproducible SystemModel -------------------

@pytest.mark.parametrize("family", BUILTIN_FAMILIES)
def test_family_builds_valid_system(family):
    system = build_scenario_spec(ScenarioSpec(family, {"num_devices": 9, "seed": 4}))
    assert system.num_devices == 9
    assert np.all(system.gains > 0.0) and np.all(np.isfinite(system.gains))
    assert np.all(system.max_power_w > 0.0)
    assert np.all(system.max_frequency_hz >= system.min_frequency_hz)
    assert system.channel_state is not None
    assert system.channel_state.num_devices == 9


@pytest.mark.parametrize("family", BUILTIN_FAMILIES)
def test_family_is_seed_deterministic(family):
    a = build_scenario_spec(ScenarioSpec(family, {"num_devices": 6, "seed": 11}))
    b = build_scenario_spec(ScenarioSpec(family, {"num_devices": 6, "seed": 11}))
    c = build_scenario_spec(ScenarioSpec(family, {"num_devices": 6, "seed": 12}))
    assert np.array_equal(a.gains, b.gains)
    assert not np.array_equal(a.gains, c.gains)


@pytest.mark.parametrize("family", BUILTIN_FAMILIES)
def test_family_accepts_standard_sweep_knobs(family):
    params = SweepConfig(num_devices=5, scenario_family=family).scenario_params(seed=0)
    system = build_scenario_spec(ScenarioSpec.from_mapping(params))
    assert system.num_devices == 5


def test_paper_family_bit_identical_to_pre_refactor():
    system = build_paper_scenario(num_devices=5, seed=123)
    assert system.gains.tolist() == list(GOLDEN_PAPER_GAINS)
    via_registry = build_scenario_spec(
        ScenarioSpec("paper", {"num_devices": 5, "seed": 123})
    )
    assert via_registry.gains.tolist() == list(GOLDEN_PAPER_GAINS)


# -- family-specific behaviour ----------------------------------------------

def test_cell_edge_devices_sit_near_the_edge():
    system = build_scenario_spec(
        ScenarioSpec("cell-edge", {"num_devices": 40, "seed": 0, "radius_km": 1.0})
    )
    distances = system.channel_state.distances_km
    assert np.all(distances >= 0.8 - 1e-9) and np.all(distances <= 1.0 + 1e-9)


def test_hetero_fleet_mixes_device_classes():
    system = build_scenario_spec(
        ScenarioSpec("hetero-fleet", {"num_devices": 60, "seed": 0})
    )
    prefixes = {p.name.split("-")[0] for p in system.fleet}
    assert len(prefixes) >= 2  # at least two classes drawn at this size
    assert len(set(np.round(system.max_frequency_hz, 3))) >= 2


def test_indoor_wall_loss_reduces_gains():
    base = {"num_devices": 16, "seed": 5}
    with_walls = build_scenario_spec(
        ScenarioSpec("indoor", {**base, "wall_loss_db": 10.0})
    )
    without = build_scenario_spec(ScenarioSpec("indoor", {**base, "wall_loss_db": 0.0}))
    assert np.all(with_walls.gains <= without.gains)
    assert np.any(with_walls.gains < without.gains)


# -- sweep-engine integration ------------------------------------------------

def test_family_is_part_of_the_cache_key():
    base = SweepConfig(num_devices=6, num_trials=1)
    [paper_task] = proposed_tasks(("p",), base, 0.5)
    [hotspot_task] = proposed_tasks(("p",), base.with_scenario("hotspot"), 0.5)
    assert task_hash(paper_task) != task_hash(hotspot_task)

    payload = hotspot_task.payload()
    assert payload["scenario_family"] == "hotspot"
    assert payload["scenario_schema"] == SCENARIO_SCHEMA_VERSION
    assert "family" not in payload["scenario"]


def test_scenario_extra_params_change_the_cache_key():
    base = SweepConfig(num_devices=6, num_trials=1).with_scenario("hotspot")
    [three] = proposed_tasks(("p",), base, 0.5)
    [five] = proposed_tasks(("p",), base.with_scenario("hotspot", num_clusters=5), 0.5)
    assert task_hash(three) != task_hash(five)


def test_with_scenario_merges_extra_params():
    sweep = SweepConfig().with_scenario("hotspot", num_clusters=4)
    sweep = sweep.with_scenario("hotspot", cluster_std_fraction=0.2)
    assert sweep.scenario_family == "hotspot"
    assert sweep.scenario_extra == {"num_clusters": 4, "cluster_std_fraction": 0.2}
    params = sweep.scenario_params(seed=3)
    assert params["family"] == "hotspot"
    assert params["num_clusters"] == 4


def _tiny_hotspot_config() -> SamplesConfig:
    sweep = SweepConfig(
        num_devices=6, num_trials=2, allocator=AllocatorConfig(max_iterations=5)
    ).with_scenario("hotspot", num_clusters=2)
    return SamplesConfig(sweep=sweep, samples_grid=(250, 500))


def test_non_paper_family_table_parity_between_jobs_1_and_4():
    config = _tiny_hotspot_config()
    serial = run_samples_sweep(config, runner=SweepRunner(jobs=1))
    parallel = run_samples_sweep(config, runner=SweepRunner(jobs=4))
    assert serial.rows == parallel.rows
    assert serial.columns == parallel.columns


# -- review regressions ------------------------------------------------------

def test_hetero_fleet_honors_total_samples():
    system = build_scenario_spec(
        ScenarioSpec("hetero-fleet", {"num_devices": 10, "seed": 0,
                                      "total_samples": 500})
    )
    # 50 base samples per device, scaled per class (0.3x .. 2x) — nowhere
    # near the 500/device default that ignoring total_samples would give.
    assert system.fleet.total_samples < 10 * 150


def test_indoor_radius_sweep_changes_the_drop():
    small = build_scenario_spec(
        ScenarioSpec("indoor", {"num_devices": 9, "seed": 0, "radius_km": 0.25})
    )
    large = build_scenario_spec(
        ScenarioSpec("indoor", {"num_devices": 9, "seed": 0, "radius_km": 1.0})
    )
    assert np.max(large.channel_state.distances_km) > np.max(
        small.channel_state.distances_km
    )


def test_scenario_params_reject_family_smuggled_in_extras():
    with pytest.raises(ConfigurationError, match="family"):
        SweepConfig().with_scenario("hotspot", **{"family": "paper"})
    with pytest.raises(ConfigurationError, match="family"):
        SweepConfig().scenario_params(seed=0, family="hotspot")
    # A family planted directly in scenario_extra is caught at task build.
    smuggled = SweepConfig(scenario_extra={"family": "hotspot"})
    with pytest.raises(ConfigurationError, match="family"):
        smuggled.scenario_params(seed=0)


def test_dotted_family_with_bad_module_raises_configuration_error():
    with pytest.raises(ConfigurationError, match="cannot resolve"):
        get_scenario_family("no_such_module.at_all:builder")
    with pytest.raises(ConfigurationError, match="cannot resolve"):
        get_scenario_family("repro.scenarios.paper:no_such_builder")


def test_channel_int_seed_does_not_correlate_shadowing_and_fading():
    from repro.wireless import ChannelModel, RayleighFading, uniform_disc_topology

    topology = uniform_disc_topology(2000, 0.25, rng=0)
    state = ChannelModel(fading=RayleighFading()).realize(topology, rng=7)
    corr = np.corrcoef(state.shadowing_db, state.fading_db)[0, 1]
    assert abs(corr) < 0.1


def test_scenario_extra_cannot_pin_the_trial_seed():
    with pytest.raises(ConfigurationError, match="seed"):
        SweepConfig().with_scenario("hotspot", seed=5)
    pinned = SweepConfig(scenario_extra={"seed": 5})
    with pytest.raises(ConfigurationError, match="seed"):
        pinned.scenario_params(seed=0)
