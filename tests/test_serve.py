"""Tests for the allocation service (``repro serve``).

The contract under test: a served allocation response is **bit-identical**
to a direct per-drop ``execute_task`` run of the same request (zero
tolerance on every metric), repeats answer from the result store as cache
hits, a concurrent burst of compatible requests actually coalesces into
one lockstep batch (observable through ``/metrics``), malformed requests
come back as 400s, and shutdown drains the coalescing queue instead of
stranding waiting clients.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.allocator import AllocatorConfig
from repro.exceptions import ConfigurationError
from repro.experiments.base import SweepConfig, proposed_tasks
from repro.experiments.runner import SweepRunner, execute_task, task_hash
from repro.serve import (
    AllocationServer,
    AllocationService,
    RequestCoalescer,
    ServeConfig,
    parse_request,
)
from repro.store import open_store

#: Tiny but real allocator setting shared by every request in this module.
TINY_ALLOCATOR = {"max_iterations": 4}


def _request_body(seed: int = 0, **overrides):
    body = {
        "scenario": {"family": "paper", "num_devices": 4, "seed": seed},
        "energy_weight": 0.5,
        "allocator": dict(TINY_ALLOCATOR),
    }
    body.update(overrides)
    return body


# -- request schema ----------------------------------------------------------


def test_parse_request_builds_the_sweep_engine_task():
    task = parse_request(_request_body(seed=3))
    assert task.solver_kind == "proposed"
    assert task.scenario["seed"] == 3
    assert task.solver_params["energy_weight"] == 0.5
    assert task.solver_params["allocator"] == AllocatorConfig(max_iterations=4)


def test_parse_request_hashes_like_a_cli_sweep_task():
    # A served request must be cache-compatible with the same task built by
    # the sweep engine: identical payload, identical digest.
    sweep = SweepConfig(
        num_devices=4,
        num_trials=1,
        base_seed=7,
        allocator=AllocatorConfig(max_iterations=4),
    )
    (sweep_task,) = proposed_tasks(("p",), sweep, 0.5)
    body = {
        "scenario": dict(sweep_task.scenario),
        "energy_weight": 0.5,
        "allocator": dict(TINY_ALLOCATOR),
    }
    served_task = parse_request(body)
    assert served_task.payload() == sweep_task.payload()
    assert task_hash(served_task) == task_hash(sweep_task)


def test_parse_request_applies_the_service_default_allocator():
    default = AllocatorConfig(max_iterations=9)
    task = parse_request(
        {"scenario": {"family": "paper"}, "energy_weight": 0.3},
        default_allocator=default,
    )
    assert task.solver_params["allocator"] == default


def test_parse_request_backend_override_enters_the_allocator():
    task = parse_request(_request_body(backend="scalar"))
    assert task.solver_params["allocator"].sum_of_ratios.backend == "scalar"


def test_parse_request_builds_baseline_tasks():
    task = parse_request(
        {
            "scenario": {"family": "paper", "num_devices": 4, "seed": 0},
            "solver_kind": "baseline",
            "baseline": "communication_only",
            "deadline_s": 120.0,
        }
    )
    assert task.solver_kind == "baseline"
    assert task.solver_params["name"] == "communication_only"
    assert task.solver_params["deadline_s"] == 120.0
    assert task.solver_params["kwargs"] == {}


@pytest.mark.parametrize(
    "body",
    [
        "not an object",
        {"energy_weight": 0.5},  # no scenario
        {"scenario": "paper", "energy_weight": 0.5},  # scenario not an object
        {"scenario": {"family": "no-such-family"}, "energy_weight": 0.5},
        {"scenario": {"family": "paper"}},  # proposed needs energy_weight
        {"scenario": {"family": "paper"}, "energy_weight": 1.5},
        {"scenario": {"family": "paper"}, "energy_weight": "half"},
        {"scenario": {"family": "paper"}, "energy_weight": 0.5, "deadline_s": -1},
        {"scenario": {"family": "paper"}, "energy_weight": 0.5, "typo_field": 1},
        {"scenario": {"family": "paper"}, "energy_weight": 0.5, "allocator": {"nope": 1}},
        {"scenario": {"family": "paper"}, "energy_weight": 0.5, "backend": "quantum"},
        {"scenario": {"family": "paper"}, "energy_weight": 0.5, "baseline": "benchmark"},
        {"scenario": {"family": "paper"}, "solver_kind": "baseline"},  # no name
        {"scenario": {"family": "paper"}, "solver_kind": "baseline", "baseline": "nope"},
        {"scenario": {"family": "paper"}, "solver_kind": "magic"},
    ],
)
def test_parse_request_rejects_malformed_bodies(body):
    with pytest.raises(ConfigurationError):
        parse_request(body)


# -- HTTP round trips --------------------------------------------------------


@pytest.fixture()
def server(tmp_path):
    """A live server on an ephemeral port with a fresh store."""
    instance = AllocationServer(
        ServeConfig(
            port=0,
            store_root=tmp_path / "store",
            store_backend="json",
            gather_window_s=0.05,
        )
    ).start()
    try:
        yield instance
    finally:
        instance.close()


def _post(server: AllocationServer, body, path: str = "/solve"):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(server: AllocationServer, path: str):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_served_response_is_bit_identical_to_direct_solve(server):
    body = _request_body(seed=11)
    status, payload = _post(server, body)
    assert status == 200
    assert payload["cached"] is False
    # Zero tolerance: the served metrics must equal the direct per-drop
    # execution of the same task, key for key, bit for bit.
    assert payload["metrics"] == execute_task(parse_request(body))
    assert payload["digest"] == task_hash(parse_request(body))


def test_served_baseline_and_deadline_requests_match_direct_solve(server):
    # The rng kwarg pins the benchmark's random draw, exactly as the
    # fig2/fig3 sweeps do via seed_rng_kwarg — without it the baseline is
    # legitimately non-deterministic and no parity claim holds.
    baseline = {
        "scenario": {"family": "paper", "num_devices": 4, "seed": 2},
        "solver_kind": "baseline",
        "baseline": "benchmark",
        "baseline_kwargs": {"rng": 2},
    }
    status, payload = _post(server, baseline)
    assert status == 200
    assert payload["metrics"] == execute_task(parse_request(baseline))
    # A hard deadline routes through the per-drop path (non-batchable) but
    # must still be exact.
    deadline = _request_body(seed=2, deadline_s=60.0)
    status, payload = _post(server, deadline)
    assert status == 200
    assert payload["batch_size"] == 1
    assert payload["metrics"] == execute_task(parse_request(deadline))


def test_repeat_request_is_a_cache_hit(server):
    body = _request_body(seed=5)
    status, first = _post(server, body)
    assert status == 200 and first["cached"] is False
    status, second = _post(server, body)
    assert status == 200 and second["cached"] is True
    assert second["metrics"] == first["metrics"]
    _status, metrics = _get(server, "/metrics")
    assert metrics["requests"]["cache_hits"] == 1
    assert metrics["requests"]["solved"] == 1


def test_sweep_cache_pre_warms_the_service(tmp_path):
    # A store filled by a plain SweepRunner answers the service's very
    # first request as a cache hit: one cache, two surfaces.
    sweep = SweepConfig(
        num_devices=4,
        num_trials=1,
        base_seed=21,
        allocator=AllocatorConfig(max_iterations=4),
    )
    (task,) = proposed_tasks(("p",), sweep, 0.5)
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "store", use_cache=True)
    (outcome,) = runner.run([task])
    server = AllocationServer(
        ServeConfig(port=0, store_root=tmp_path / "store")
    ).start()
    try:
        body = {
            "scenario": dict(task.scenario),
            "energy_weight": 0.5,
            "allocator": dict(TINY_ALLOCATOR),
        }
        status, payload = _post(server, body)
        assert status == 200
        assert payload["cached"] is True
        assert payload["metrics"] == outcome.metrics
    finally:
        server.close()


def test_concurrent_burst_coalesces_into_one_batch(server):
    # Six compatible requests fired together must solve as one lockstep
    # batch (they share a batch_group_key and land within the gather
    # window), observable in both the responses and /metrics.
    results: list[tuple[int, dict]] = []
    barrier = threading.Barrier(6)

    def fire(seed: int) -> None:
        barrier.wait()
        results.append(_post(server, _request_body(seed=seed)))

    threads = [threading.Thread(target=fire, args=(seed,)) for seed in range(30, 36)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(status == 200 for status, _ in results)
    assert max(payload["batch_size"] for _, payload in results) > 1
    _status, metrics = _get(server, "/metrics")
    assert metrics["coalescing"]["max_batch_size"] > 1
    assert metrics["coalescing"]["batches"] < 6
    # Coalesced or not, every response stays bit-identical to a direct solve.
    for _, payload in results:
        seed = next(
            seed
            for seed in range(30, 36)
            if task_hash(parse_request(_request_body(seed=seed))) == payload["digest"]
        )
        assert payload["metrics"] == execute_task(parse_request(_request_body(seed=seed)))


def test_identical_concurrent_requests_join_one_lane(server):
    body = _request_body(seed=40)
    results: list[tuple[int, dict]] = []
    barrier = threading.Barrier(4)

    def fire() -> None:
        barrier.wait()
        results.append(_post(server, body))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(status == 200 for status, _ in results)
    reference = results[0][1]["metrics"]
    assert all(payload["metrics"] == reference for _, payload in results)
    _status, metrics = _get(server, "/metrics")
    # Four requests, but at most one actual solve: the rest joined the
    # in-flight lane or hit the cache.
    assert metrics["coalescing"]["solved"] == 1
    joined_or_hit = (
        metrics["coalescing"]["joined"] + metrics["requests"]["cache_hits"]
    )
    assert joined_or_hit == 3


def test_solved_results_land_in_the_store(server, tmp_path):
    body = _request_body(seed=50)
    _status, payload = _post(server, body)
    store = open_store(tmp_path / "store", "json")
    entry = store.get_entry(payload["digest"])
    assert entry is not None
    assert entry[0] == payload["metrics"]


def test_malformed_requests_are_400s(server):
    status, payload = _post(server, {"bogus": 1})
    assert status == 400 and "bogus" in payload["error"]
    status, payload = _post(server, {"scenario": {"family": "no-such"}, "energy_weight": 0.5})
    assert status == 400 and "no-such" in payload["error"]
    # Invalid JSON body.
    request = urllib.request.Request(server.url + "/solve", data=b"{not json")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    _status, metrics = _get(server, "/metrics")
    assert metrics["requests"]["invalid"] == 3


def test_unknown_paths_are_404s(server):
    status, _ = _post(server, {}, path="/nope")
    assert status == 404
    status, _ = _get(server, "/nope")
    assert status == 404


def test_solver_failures_are_500s_with_the_error_string(server):
    # A scenario the family builder rejects fails in the worker; the
    # response carries the crash-isolation error string, not a hung socket.
    status, payload = _post(server, _request_body(seed=0, scenario={"family": "paper", "num_devices": 0, "seed": 0}))
    assert status == 500
    assert payload["error"]
    _status, metrics = _get(server, "/metrics")
    assert metrics["requests"]["errors"] == 1


def test_healthz_and_metrics_endpoints(server):
    status, payload = _get(server, "/healthz")
    assert status == 200 and payload["status"] == "ok"
    status, metrics = _get(server, "/metrics")
    assert status == 200
    assert metrics["store"]["backend"] == "json"
    assert set(metrics["requests"]) == {
        "total",
        "solve",
        "cache_hits",
        "solved",
        "errors",
        "invalid",
    }


# -- shutdown ----------------------------------------------------------------


def test_close_drains_queued_requests():
    # A coalescer with an hour-long gather window never solves on its own
    # within the test; close() must drain (solve) the queue, not drop it.
    coalescer = RequestCoalescer(gather_window_s=3600.0)
    try:
        tasks = [parse_request(_request_body(seed=seed)) for seed in (60, 61)]
        futures = [coalescer.submit(task, task_hash(task)) for task in tasks]
    finally:
        coalescer.close()
    outcomes = [future.result(timeout=0) for future in futures]
    assert all(outcome.ok for outcome in outcomes)
    for task, outcome in zip(tasks, outcomes):
        assert outcome.metrics == execute_task(task)
    with pytest.raises(RuntimeError):
        coalescer.submit(tasks[0], "resubmitted-after-close")


def test_service_close_flushes_the_store(tmp_path):
    service = AllocationService(
        ServeConfig(
            port=0,
            store_root=tmp_path / "store",
            store_backend="columnar",
            gather_window_s=0.0,
        )
    )
    try:
        status, payload = service.solve(_request_body(seed=70))
        assert status == 200
    finally:
        service.close()
    # A fresh instance (no shared in-memory state) reads the entry back.
    store = open_store(tmp_path / "store", "columnar")
    assert store.get_entry(payload["digest"]) is not None
    service.close()  # idempotent
