"""Tests for the scalar and vectorised bisection solvers."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solvers import bisect_scalar, bisect_vector, expand_bracket


def test_bisect_scalar_finds_root_of_linear_function():
    root = bisect_scalar(lambda x: 2.0 * x - 3.0, 0.0, 10.0)
    assert root == pytest.approx(1.5, rel=1e-9)


def test_bisect_scalar_finds_root_of_decreasing_function():
    root = bisect_scalar(lambda x: 10.0 - x**2, 0.0, 10.0)
    assert root == pytest.approx(np.sqrt(10.0), rel=1e-9)


def test_bisect_scalar_accepts_root_at_endpoint():
    assert bisect_scalar(lambda x: x, 0.0, 1.0) == 0.0
    assert bisect_scalar(lambda x: x - 1.0, 0.0, 1.0) == 1.0


def test_bisect_scalar_requires_sign_change():
    with pytest.raises(SolverError):
        bisect_scalar(lambda x: x + 1.0, 0.0, 1.0)


def test_bisect_vector_solves_independent_equations():
    targets = np.array([1.0, 4.0, 9.0, 0.25])
    roots = bisect_vector(lambda x: x**2 - targets, np.zeros(4), np.full(4, 10.0))
    assert np.allclose(roots, np.sqrt(targets), rtol=1e-9)


def test_bisect_vector_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        bisect_vector(lambda x: x, np.zeros(3), np.ones(2))


def test_bisect_vector_requires_sign_change_everywhere():
    with pytest.raises(SolverError):
        bisect_vector(lambda x: x + 1.0, np.zeros(2), np.ones(2))


def test_expand_bracket_grows_until_sign_change():
    lo, hi = expand_bracket(lambda x: x - 100.0, 0.0, 1.0)
    assert lo == 0.0
    assert hi >= 100.0


def test_expand_bracket_returns_original_interval_when_already_bracketing():
    lo, hi = expand_bracket(lambda x: x - 0.5, 0.0, 1.0)
    assert (lo, hi) == (0.0, 1.0)


def test_expand_bracket_gives_up_eventually():
    with pytest.raises(SolverError):
        expand_bracket(lambda x: 1.0, 0.0, 1.0, max_expansions=5)
