"""Tests for the scalar and vectorised bisection solvers."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solvers import bisect_scalar, bisect_vector, expand_bracket


def test_bisect_scalar_finds_root_of_linear_function():
    root = bisect_scalar(lambda x: 2.0 * x - 3.0, 0.0, 10.0)
    assert root == pytest.approx(1.5, rel=1e-9)


def test_bisect_scalar_finds_root_of_decreasing_function():
    root = bisect_scalar(lambda x: 10.0 - x**2, 0.0, 10.0)
    assert root == pytest.approx(np.sqrt(10.0), rel=1e-9)


def test_bisect_scalar_accepts_root_at_endpoint():
    assert bisect_scalar(lambda x: x, 0.0, 1.0) == 0.0
    assert bisect_scalar(lambda x: x - 1.0, 0.0, 1.0) == 1.0


def test_bisect_scalar_requires_sign_change():
    with pytest.raises(SolverError):
        bisect_scalar(lambda x: x + 1.0, 0.0, 1.0)


def test_bisect_vector_solves_independent_equations():
    targets = np.array([1.0, 4.0, 9.0, 0.25])
    roots = bisect_vector(lambda x: x**2 - targets, np.zeros(4), np.full(4, 10.0))
    assert np.allclose(roots, np.sqrt(targets), rtol=1e-9)


def test_bisect_vector_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        bisect_vector(lambda x: x, np.zeros(3), np.ones(2))


def test_bisect_vector_requires_sign_change_everywhere():
    with pytest.raises(SolverError):
        bisect_vector(lambda x: x + 1.0, np.zeros(2), np.ones(2))


def test_expand_bracket_grows_until_sign_change():
    lo, hi = expand_bracket(lambda x: x - 100.0, 0.0, 1.0)
    assert lo == 0.0
    assert hi >= 100.0


def test_expand_bracket_returns_original_interval_when_already_bracketing():
    lo, hi = expand_bracket(lambda x: x - 0.5, 0.0, 1.0)
    assert (lo, hi) == (0.0, 1.0)


def test_expand_bracket_gives_up_eventually():
    with pytest.raises(SolverError):
        expand_bracket(lambda x: 1.0, 0.0, 1.0, max_expansions=5)


def test_bisect_scalar_raises_on_exhausted_iteration_budget():
    from repro.exceptions import ConvergenceError

    with pytest.raises(ConvergenceError, match="did not converge"):
        bisect_scalar(lambda x: x - np.pi, 0.0, 10.0, tol=1e-12, max_iter=3)


def test_bisect_scalar_converges_within_budget_when_tolerance_is_loose():
    root = bisect_scalar(lambda x: x - np.pi, 0.0, 10.0, tol=1e-2, max_iter=15)
    assert abs(root - np.pi) < 0.1


def test_bisect_vector_raises_on_exhausted_iteration_budget():
    from repro.exceptions import ConvergenceError

    targets = np.array([2.0, 7.0])
    with pytest.raises(ConvergenceError, match="did not converge"):
        bisect_vector(
            lambda x: x - targets, np.zeros(2), np.full(2, 10.0), tol=1e-12, max_iter=3
        )


def test_convergence_error_is_a_solver_error():
    # Callers catching SolverError (the established failure surface) also
    # see the new non-convergence reports.
    from repro.exceptions import ConvergenceError, SolverError

    assert issubclass(ConvergenceError, SolverError)
