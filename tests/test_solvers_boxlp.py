"""Tests for the box-constrained budget LP (problem (A.6))."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleProblemError
from repro.solvers import solve_box_budget_lp


def test_negative_costs_consume_budget_greedily():
    costs = np.array([-3.0, -1.0, 2.0])
    lower = np.zeros(3)
    upper = np.array([4.0, 4.0, 4.0])
    result = solve_box_budget_lp(costs, lower, upper, budget=5.0)
    # Cheapest (most negative) variable is filled first.
    assert np.allclose(result.x, [4.0, 1.0, 0.0])
    assert result.objective == pytest.approx(-13.0)
    assert result.budget_used == pytest.approx(5.0)


def test_positive_costs_stay_at_lower_bounds():
    costs = np.array([1.0, 2.0])
    lower = np.array([0.5, 1.0])
    upper = np.array([3.0, 3.0])
    result = solve_box_budget_lp(costs, lower, upper, budget=10.0)
    assert np.allclose(result.x, lower)
    assert result.budget_slack == pytest.approx(10.0 - 1.5)


def test_budget_slack_left_when_all_uppers_reached():
    costs = np.array([-1.0, -1.0])
    result = solve_box_budget_lp(costs, np.zeros(2), np.ones(2), budget=5.0)
    assert np.allclose(result.x, 1.0)
    assert result.budget_slack == pytest.approx(3.0)


def test_lower_bounds_exceeding_budget_is_infeasible():
    with pytest.raises(InfeasibleProblemError):
        solve_box_budget_lp(np.zeros(2), np.array([3.0, 3.0]), np.array([4.0, 4.0]), budget=5.0)


def test_lower_above_upper_is_infeasible():
    with pytest.raises(InfeasibleProblemError):
        solve_box_budget_lp(np.zeros(2), np.array([2.0, 0.0]), np.array([1.0, 1.0]), budget=5.0)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        solve_box_budget_lp(np.zeros(2), np.zeros(3), np.zeros(3), budget=1.0)


def test_solution_is_optimal_against_random_feasible_points():
    rng = np.random.default_rng(7)
    costs = rng.normal(size=6)
    lower = rng.uniform(0.0, 0.5, size=6)
    upper = lower + rng.uniform(0.5, 2.0, size=6)
    budget = float(lower.sum() + 2.0)
    result = solve_box_budget_lp(costs, lower, upper, budget)
    for _ in range(200):
        candidate = rng.uniform(lower, upper)
        if candidate.sum() > budget:
            excess = candidate.sum() - budget
            candidate = lower + (candidate - lower) * max(
                0.0, 1.0 - excess / max((candidate - lower).sum(), 1e-12)
            )
        if candidate.sum() <= budget + 1e-9:
            assert costs @ candidate >= result.objective - 1e-9
