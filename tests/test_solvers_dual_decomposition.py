"""Tests for the dual-decomposition fallback solver."""

import numpy as np
import pytest

from repro.solvers import minimize_separable_with_budget


def test_unconstrained_optimum_inside_budget_is_returned():
    centres = np.array([1.0, 2.0, 0.5])
    result = minimize_separable_with_budget(
        lambda x: (x - centres) ** 2, np.zeros(3), np.full(3, 10.0), budget=100.0
    )
    assert np.allclose(result.x, centres, atol=1e-4)
    assert result.multiplier == pytest.approx(0.0)


def test_budget_constraint_binds_when_tight():
    centres = np.array([4.0, 4.0])
    result = minimize_separable_with_budget(
        lambda x: (x - centres) ** 2, np.zeros(2), np.full(2, 10.0), budget=4.0
    )
    assert result.x.sum() == pytest.approx(4.0, rel=1e-3)
    # Symmetric problem: the budget is split evenly.
    assert np.allclose(result.x, 2.0, atol=1e-3)
    assert result.multiplier > 0.0


def test_matches_kkt_solution_for_quadratic_costs():
    # minimize sum (x_i - c_i)^2 st sum x <= s has solution x_i = c_i - mu/2.
    centres = np.array([3.0, 5.0, 7.0])
    budget = 9.0
    result = minimize_separable_with_budget(
        lambda x: (x - centres) ** 2, np.zeros(3), np.full(3, 100.0), budget=budget
    )
    mu = 2.0 * (centres.sum() - budget) / 3.0
    expected = centres - mu / 2.0
    assert np.allclose(result.x, expected, atol=1e-3)


def test_lower_bounds_respected():
    centres = np.array([0.0, 0.0])
    lower = np.array([1.0, 2.0])
    result = minimize_separable_with_budget(
        lambda x: (x - centres) ** 2, lower, np.full(2, 10.0), budget=10.0
    )
    assert np.all(result.x >= lower - 1e-9)


def test_exactly_full_lower_bounds_are_accepted():
    lower = np.array([2.0, 3.0])
    result = minimize_separable_with_budget(
        lambda x: x, lower, np.full(2, 10.0), budget=5.0
    )
    assert result.x.sum() <= 5.0 + 1e-6


def test_infeasible_lower_bounds_rejected():
    with pytest.raises(ValueError):
        minimize_separable_with_budget(
            lambda x: x, np.array([4.0, 4.0]), np.full(2, 10.0), budget=5.0
        )


def test_bad_bounds_rejected():
    with pytest.raises(ValueError):
        minimize_separable_with_budget(
            lambda x: x, np.array([1.0, 5.0]), np.array([2.0, 4.0]), budget=10.0
        )
    with pytest.raises(ValueError):
        minimize_separable_with_budget(lambda x: x, np.zeros(2), np.zeros(3), budget=1.0)


def test_unbracketable_budget_multiplier_raises_instead_of_violating_budget():
    # A cost whose slope is far steeper than mu_max pins every component at
    # its upper bound for any affordable multiplier: no mu <= mu_max can
    # bring the inner solution under the budget.  The solver must refuse
    # instead of silently returning a budget-violating allocation.
    from repro.exceptions import SolverError

    with pytest.raises(SolverError, match="could not be bracketed"):
        minimize_separable_with_budget(
            lambda x: -1e8 * x,
            np.zeros(2),
            np.full(2, 10.0),
            budget=5.0,
            mu_max=1e6,
        )


def test_bracketable_steep_costs_still_solve():
    # Same steep cost, but with mu_max above the slope the expansion does
    # bracket and the budget binds exactly.
    result = minimize_separable_with_budget(
        lambda x: -1e3 * x,
        np.zeros(2),
        np.full(2, 10.0),
        budget=5.0,
        mu_max=1e6,
    )
    assert result.x.sum() <= 5.0 * (1.0 + 1e-6)
    assert result.multiplier > 0.0
