"""Tests for the KKT residual diagnostics."""

import numpy as np

from repro.solvers.kkt import (
    KKTReport,
    box_constraint_violation,
    budget_violation,
    complementary_slackness,
)


def test_box_violation_zero_inside_box():
    x = np.array([0.5, 1.0, 0.0])
    assert box_constraint_violation(x, 0.0, 1.0) == 0.0


def test_box_violation_measures_worst_relative_breach():
    x = np.array([-1.0, 3.0])
    violation = box_constraint_violation(x, 0.0, 2.0)
    assert violation > 0.0
    # The worst breach is 1.0 above the upper bound of 2 -> 0.5 relative.
    assert np.isclose(violation, 0.5)


def test_budget_violation_zero_when_under_budget():
    assert budget_violation(np.array([1.0, 2.0]), budget=5.0) == 0.0


def test_budget_violation_relative_overshoot():
    assert np.isclose(budget_violation(np.array([3.0, 4.0]), budget=5.0), 2.0 / 5.0)


def test_complementary_slackness_vanishes_when_either_factor_is_zero():
    assert complementary_slackness(0.0, 5.0) == 0.0
    assert complementary_slackness(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == 0.0


def test_complementary_slackness_reports_largest_product():
    value = complementary_slackness(np.array([1.0, 2.0]), np.array([0.1, 0.3]))
    assert np.isclose(value, 0.6)


def test_report_feasibility_flag():
    ok = KKTReport(max_box_violation=0.0, budget_violation=0.0, max_inequality_violation=0.0)
    bad = KKTReport(max_box_violation=0.1, budget_violation=0.0, max_inequality_violation=0.0)
    assert ok.is_feasible
    assert not bad.is_feasible
