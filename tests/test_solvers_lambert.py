"""Tests for the Lambert-W helpers behind the Appendix-B closed forms."""

import numpy as np
import pytest

from repro.solvers import lambert_w_principal, solve_x_log_x


def test_lambert_w_known_values():
    assert lambert_w_principal(0.0) == pytest.approx(0.0)
    assert lambert_w_principal(np.e) == pytest.approx(1.0)
    assert lambert_w_principal(-1.0 / np.e) == pytest.approx(-1.0, abs=1e-6)


def test_lambert_w_defining_identity():
    for z in (0.1, 0.5, 2.0, 10.0, 100.0):
        w = float(lambert_w_principal(z))
        assert w * np.exp(w) == pytest.approx(z, rel=1e-10)


def test_lambert_w_clamps_below_branch_point():
    # Values marginally below -1/e (round-off) must not produce NaN.
    value = lambert_w_principal(-1.0 / np.e - 1e-18)
    assert np.isfinite(value)
    assert value == pytest.approx(-1.0, abs=1e-6)


def test_solve_x_log_x_zero_rhs_gives_one():
    assert solve_x_log_x(0.0) == pytest.approx(1.0)


def test_solve_x_log_x_satisfies_equation():
    rhs = np.array([1e-6, 0.01, 0.5, 1.0, 5.0, 50.0, 1e4])
    x = solve_x_log_x(rhs)
    assert np.all(x >= 1.0)
    residual = x * np.log(x) - x + 1.0
    assert np.allclose(residual, rhs, rtol=1e-8, atol=1e-12)


def test_solve_x_log_x_is_monotone_in_rhs():
    rhs = np.linspace(0.0, 20.0, 50)
    x = solve_x_log_x(rhs)
    assert np.all(np.diff(x) >= -1e-12)


def test_solve_x_log_x_agrees_with_lambert_w_formula():
    # x = (mu - j) / (j W((mu-j)/(e j))) for mu != j, from Appendix B.
    j = 2.0
    for mu in (0.5, 1.0, 3.0, 10.0):
        x_newton = float(solve_x_log_x(mu / j))
        argument = (mu - j) / (np.e * j)
        w = float(lambert_w_principal(argument))
        if abs(w) > 1e-12:
            x_lambert = (mu - j) / (j * w)
            assert x_newton == pytest.approx(x_lambert, rel=1e-6)


def test_solve_x_log_x_rejects_negative_rhs():
    with pytest.raises(ValueError):
        solve_x_log_x(-0.5)
