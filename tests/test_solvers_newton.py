"""Tests for the damped Newton-like step (Algorithm 1's update rule)."""

import numpy as np
import pytest

from repro.solvers import damped_newton_step


def test_full_newton_step_zeroes_linear_residual():
    # phi(alpha) = G * alpha - target with diagonal Jacobian G.
    gains = np.array([2.0, 5.0, 1.0])
    target = np.array([4.0, 10.0, 3.0])
    alpha = np.zeros(3)

    def residual(a):
        return gains * a - target

    direction = (target / gains) - alpha
    result = damped_newton_step(alpha, residual, direction)
    assert result.accepted
    assert result.step_exponent == 0
    assert result.residual_norm == pytest.approx(0.0, abs=1e-12)
    assert np.allclose(result.alpha, target / gains)


def test_zero_residual_returns_immediately():
    alpha = np.array([1.0, 2.0])
    result = damped_newton_step(alpha, lambda a: np.zeros(2), np.array([5.0, 5.0]))
    assert result.accepted
    assert np.allclose(result.alpha, alpha)
    assert result.residual_norm == 0.0


def test_backtracking_reduces_step_for_overshooting_direction():
    # Direction deliberately 10x the Newton step: the full step increases the
    # residual, so the line search must damp it.
    def residual(a):
        return a - 1.0

    alpha = np.zeros(1)
    direction = np.array([10.0])
    result = damped_newton_step(alpha, residual, direction, xi=0.5, eps=0.01)
    assert result.step_exponent >= 1
    assert result.residual_norm < 1.0  # still a strict improvement


def test_step_size_is_xi_to_the_exponent():
    def residual(a):
        return a - 1.0

    result = damped_newton_step(np.zeros(1), residual, np.array([10.0]), xi=0.5)
    assert result.step_size == pytest.approx(0.5**result.step_exponent)


def test_invalid_hyperparameters_rejected():
    with pytest.raises(ValueError):
        damped_newton_step(np.zeros(1), lambda a: a, np.ones(1), xi=1.5)
    with pytest.raises(ValueError):
        damped_newton_step(np.zeros(1), lambda a: a, np.ones(1), eps=0.0)


def test_unacceptable_direction_still_returns_smallest_step():
    # A direction that always increases the residual: the helper must not
    # loop forever and must flag the step as not accepted.
    def residual(a):
        return a + 1.0

    result = damped_newton_step(
        np.zeros(1), residual, np.array([100.0]), max_backtracks=5
    )
    assert not result.accepted
    assert result.step_size == pytest.approx(0.5**5)
