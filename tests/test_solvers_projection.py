"""Tests for the Euclidean projection helpers."""

import numpy as np
import pytest

from repro.solvers import project_box, project_capped_simplex, project_simplex


def test_project_box_clips_both_sides():
    x = np.array([-2.0, 0.5, 7.0])
    assert np.allclose(project_box(x, 0.0, 1.0), [0.0, 0.5, 1.0])


def test_project_box_with_array_bounds():
    x = np.array([5.0, 5.0])
    lo = np.array([0.0, 6.0])
    hi = np.array([4.0, 8.0])
    assert np.allclose(project_box(x, lo, hi), [4.0, 6.0])


def test_project_simplex_preserves_points_already_on_simplex():
    x = np.array([0.2, 0.3, 0.5])
    assert np.allclose(project_simplex(x), x)


def test_project_simplex_output_is_feasible():
    rng = np.random.default_rng(1)
    for _ in range(20):
        x = rng.normal(size=10) * 5.0
        projected = project_simplex(x, total=3.0)
        assert np.all(projected >= -1e-12)
        assert projected.sum() == pytest.approx(3.0)


def test_project_simplex_is_idempotent():
    x = np.random.default_rng(2).normal(size=6)
    once = project_simplex(x, total=2.0)
    twice = project_simplex(once, total=2.0)
    assert np.allclose(once, twice, atol=1e-9)


def test_project_simplex_rejects_nonpositive_total():
    with pytest.raises(ValueError):
        project_simplex(np.ones(3), total=0.0)


def test_capped_simplex_respects_box_and_total():
    x = np.array([10.0, -10.0, 0.0, 5.0])
    lo = np.zeros(4)
    hi = np.full(4, 2.0)
    projected = project_capped_simplex(x, lo, hi, total=4.0)
    assert np.all(projected >= -1e-9)
    assert np.all(projected <= 2.0 + 1e-9)
    assert projected.sum() == pytest.approx(4.0)


def test_capped_simplex_infeasible_total_rejected():
    with pytest.raises(ValueError):
        project_capped_simplex(np.ones(3), 0.0, 1.0, total=10.0)


def test_capped_simplex_requires_ordered_bounds():
    with pytest.raises(ValueError):
        project_capped_simplex(np.ones(2), np.array([1.0, 1.0]), np.array([0.0, 2.0]), total=1.0)
