"""Tests for the golden-section minimisers."""

import numpy as np
import pytest

from repro.solvers import golden_section_scalar, golden_section_vector


def test_scalar_minimises_parabola():
    x, fx = golden_section_scalar(lambda x: (x - 3.0) ** 2 + 1.0, -10.0, 10.0)
    assert x == pytest.approx(3.0, abs=1e-6)
    assert fx == pytest.approx(1.0, abs=1e-9)


def test_scalar_handles_reversed_interval():
    x, _ = golden_section_scalar(lambda x: (x - 1.0) ** 2, 5.0, -5.0)
    assert x == pytest.approx(1.0, abs=1e-6)


def test_scalar_degenerate_interval():
    x, fx = golden_section_scalar(lambda x: x**2, 2.0, 2.0)
    assert x == 2.0
    assert fx == 4.0


def test_scalar_minimum_at_boundary():
    x, _ = golden_section_scalar(lambda x: x, 0.0, 1.0)
    assert x == pytest.approx(0.0, abs=1e-6)


def test_vector_minimises_independent_parabolas():
    centres = np.array([-2.0, 0.5, 4.0, 10.0])
    x, fx = golden_section_vector(
        lambda x: (x - centres) ** 2,
        np.full(4, -20.0),
        np.full(4, 20.0),
    )
    assert np.allclose(x, centres, atol=1e-5)
    assert np.allclose(fx, 0.0, atol=1e-9)


def test_vector_respects_individual_bounds():
    centres = np.array([5.0, -5.0])
    x, _ = golden_section_vector(lambda x: (x - centres) ** 2, np.array([0.0, 0.0]), np.array([1.0, 1.0]))
    # The unconstrained minima are outside the boxes; solutions must be at the
    # nearest box edge.
    assert x[0] == pytest.approx(1.0, abs=1e-5)
    assert x[1] == pytest.approx(0.0, abs=1e-5)


def test_vector_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        golden_section_vector(lambda x: x, np.zeros(2), np.zeros(3))


def test_vector_handles_swapped_bounds():
    centres = np.array([1.0, 2.0])
    x, _ = golden_section_vector(
        lambda x: (x - centres) ** 2, np.array([10.0, 10.0]), np.array([-10.0, -10.0])
    )
    assert np.allclose(x, centres, atol=1e-5)
