"""Tests for the water-filling solver used by Subproblem 1's dual."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solvers import maximize_concave_on_simplex, power_waterfilling


def _dual_objective(a, b, x, q):
    return float(np.sum(a * x**q + b * x))


def test_waterfilling_result_is_on_the_simplex():
    a = np.array([1.0, 2.0, 0.5])
    b = np.array([0.1, 0.0, 0.3])
    x, eta = power_waterfilling(a, b, total=5.0, exponent=2.0 / 3.0)
    assert x.sum() == pytest.approx(5.0, rel=1e-9)
    assert np.all(x > 0.0)
    assert eta > b.max()


def test_waterfilling_satisfies_stationarity():
    a = np.array([1.5, 0.7, 2.2, 1.0])
    b = np.array([0.2, 0.5, 0.1, 0.0])
    q = 2.0 / 3.0
    x, eta = power_waterfilling(a, b, total=3.0, exponent=q)
    gradients = q * a * x ** (q - 1.0) + b
    assert np.allclose(gradients, eta, rtol=1e-4)


def test_waterfilling_beats_uniform_allocation():
    rng = np.random.default_rng(3)
    a = rng.uniform(0.5, 2.0, size=8)
    b = rng.uniform(0.0, 1.0, size=8)
    q = 2.0 / 3.0
    x, _ = power_waterfilling(a, b, total=4.0, exponent=q)
    uniform = np.full(8, 0.5)
    assert _dual_objective(a, b, x, q) >= _dual_objective(a, b, uniform, q) - 1e-9


def test_waterfilling_equal_inputs_gives_equal_split():
    a = np.full(5, 1.3)
    b = np.full(5, 0.2)
    x, _ = power_waterfilling(a, b, total=10.0, exponent=0.5)
    assert np.allclose(x, 2.0, rtol=1e-6)


def test_waterfilling_rejects_bad_arguments():
    with pytest.raises(SolverError):
        power_waterfilling(np.array([0.0, 1.0]), np.zeros(2), 1.0, 0.5)
    with pytest.raises(ValueError):
        power_waterfilling(np.ones(2), np.zeros(2), 1.0, 1.5)
    with pytest.raises(ValueError):
        power_waterfilling(np.ones(2), np.zeros(2), -1.0, 0.5)
    with pytest.raises(ValueError):
        power_waterfilling(np.ones(2), np.zeros(3), 1.0, 0.5)


def test_maximize_concave_on_simplex_uses_two_thirds_exponent():
    a = np.array([1.0, 1.0])
    b = np.array([0.0, 1.0])
    x, _ = maximize_concave_on_simplex(a, b, total=2.0)
    # The component with the larger linear reward must receive more mass.
    assert x[1] > x[0]
    assert x.sum() == pytest.approx(2.0, rel=1e-9)
