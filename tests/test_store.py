"""Tests for the result-store backends (``repro.store``).

The JSON backend is the compatibility oracle (the original one-file-per-
task cache layout, unchanged); the columnar backend must serve *exactly*
the same entries from its append-log + packed-segment layout.  The suite
therefore leans on exact equality everywhere: metric key order, int-vs-
float types and warm-state structure all round-trip bit-identically, and
compaction/migration/merge are byte-deterministic on disk.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.store import (
    BACKENDS,
    ColumnarResultStore,
    JsonResultStore,
    StoreEntry,
    detect_backend,
    merge_stores,
    migrate_store,
    open_store,
    shard_for_digest,
)

DIGESTS = [f"{i:02x}" * 32 for i in range(6)]


def _entry(i: int, *, state: dict | None = "default") -> tuple:
    """A (digest, task, metrics, state) quadruple with mixed value types."""
    if state == "default":
        state = {"power_w": [1.0 * i, 2.0 + i], "mu": 0.5 * i}
    task = {"scenario": {"seed": i}, "solver_kind": "proposed"}
    # Key order is deliberately not sorted and mixes ints with floats.
    metrics = {"objective": 1.5 * i, "iterations": 3 + i, "energy_j": 0.25}
    return DIGESTS[i], task, metrics, state


def _fill(store, indices=range(3), **kwargs):
    for i in indices:
        store.put(*_entry(i, **kwargs))
    store.flush()
    return store


def _tree_bytes(root):
    """Every file under ``root`` with its bytes, as a comparable dict."""
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


# -- round trips, both backends ----------------------------------------------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_round_trip_preserves_types_and_key_order(tmp_path, backend):
    store = _fill(open_store(tmp_path, backend))
    reader = open_store(tmp_path, backend)
    for i in range(3):
        digest, _task, metrics, state = _entry(i)
        got = reader.get_entry(digest)
        assert got is not None
        got_metrics, got_state = got
        assert got_metrics == metrics
        assert list(got_metrics) == list(metrics)  # insertion order kept
        assert [type(v) for v in got_metrics.values()] == [
            type(v) for v in metrics.values()
        ]
        assert got_state == state
    assert store.get(DIGESTS[0]) == reader.get_entry(DIGESTS[0])[0]
    assert reader.get_entry("ff" * 32) is None


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_none_state_round_trips(tmp_path, backend):
    store = _fill(open_store(tmp_path, backend), indices=[0], state=None)
    assert store.get_entry(DIGESTS[0]) == (_entry(0)[2], None)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_keys_entries_len_contains_stat(tmp_path, backend):
    store = _fill(open_store(tmp_path, backend))
    assert sorted(store.keys()) == sorted(DIGESTS[:3])
    assert len(store) == 3
    assert DIGESTS[1] in store and "ff" * 32 not in store
    entries = {entry.digest: entry for entry in store.entries()}
    assert set(entries) == set(DIGESTS[:3])
    assert entries[DIGESTS[2]] == StoreEntry(*_entry(2))
    stat = store.stat()
    assert stat.backend == backend
    assert stat.entries == 3
    assert stat.files >= 1
    assert stat.bytes > 0


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_overwrite_keeps_latest(tmp_path, backend):
    store = open_store(tmp_path, backend)
    digest, task, metrics, state = _entry(0)
    store.put(digest, task, metrics, state)
    store.put(digest, task, {"objective": 9.0}, None)
    store.flush()
    assert store.get_entry(digest) == ({"objective": 9.0}, None)
    assert open_store(tmp_path, backend).get_entry(digest) == (
        {"objective": 9.0},
        None,
    )
    assert len(store) == 1


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_metric_columns_and_query(tmp_path, backend):
    store = open_store(tmp_path, backend)
    store.put(DIGESTS[0], {}, {"a": 1.0, "b": 2}, None)
    store.put(DIGESTS[1], {}, {"b": 3.0}, None)
    store.flush()
    assert store.metric_columns() == ["a", "b"]
    rows = store.query(["a", "b"])
    assert rows == sorted(
        [(DIGESTS[0], [1.0, 2]), (DIGESTS[1], [None, 3.0])]
    )
    # Absent columns read as None for every row.
    assert store.query(["missing"]) == sorted(
        [(DIGESTS[0], [None]), (DIGESTS[1], [None])]
    )


def test_columnar_query_matches_json_query(tmp_path):
    json_store = _fill(open_store(tmp_path / "json", "json"))
    columnar = _fill(open_store(tmp_path / "col", "columnar"))
    columnar.compact()
    columns = json_store.metric_columns()
    assert columnar.query(columns) == json_store.query(columns)


# -- construction / detection ------------------------------------------------


def test_open_store_rejects_unknown_backend(tmp_path):
    with pytest.raises(ValueError, match="unknown store backend"):
        open_store(tmp_path, "parquet")


def test_detect_backend_and_auto_open(tmp_path):
    assert detect_backend(tmp_path) is None
    assert open_store(tmp_path).backend == "json"  # default for fresh dirs

    _fill(open_store(tmp_path / "a", "json"))
    assert detect_backend(tmp_path / "a") == "json"
    assert isinstance(open_store(tmp_path / "a"), JsonResultStore)

    _fill(open_store(tmp_path / "b", "columnar"))
    assert detect_backend(tmp_path / "b") == "columnar"
    assert isinstance(open_store(tmp_path / "b"), ColumnarResultStore)
    # Detection works from the log alone and from a compacted manifest alone.
    store = open_store(tmp_path / "b")
    store.compact()
    assert detect_backend(tmp_path / "b") == "columnar"


# -- crash safety (satellite: torn writes are misses, never corruption) ------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_put_leaves_no_temp_files(tmp_path, backend):
    _fill(open_store(tmp_path, backend))
    leftovers = [p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")]
    assert leftovers == []


def test_json_garbage_entry_is_a_miss(tmp_path):
    store = _fill(open_store(tmp_path, "json"))
    path = store.entry_path(DIGESTS[1])
    path.write_text('{"task": {"truncated...')
    reader = open_store(tmp_path, "json")
    assert reader.get_entry(DIGESTS[1]) is None
    # The neighbours are untouched.
    assert reader.get_entry(DIGESTS[0]) is not None
    assert reader.get_entry(DIGESTS[2]) is not None


def test_columnar_torn_log_line_is_a_miss(tmp_path):
    store = _fill(open_store(tmp_path, "columnar"))
    log = tmp_path / "columnar" / "log.jsonl"
    blob = log.read_bytes()
    log.write_bytes(blob[: len(blob) - 40])  # tear the final record
    reader = open_store(tmp_path, "columnar")
    assert reader.get_entry(DIGESTS[2]) is None
    assert reader.get_entry(DIGESTS[0]) == (_entry(0)[2], _entry(0)[3])
    assert reader.get_entry(DIGESTS[1]) is not None
    # A later put appends cleanly after the torn tail is ignored.
    reader.put(*_entry(2))
    reader.flush()
    assert open_store(tmp_path, "columnar").get_entry(DIGESTS[2]) is not None


def test_columnar_garbage_segment_is_skipped_with_warning(tmp_path):
    store = _fill(open_store(tmp_path, "columnar"))
    store.compact()
    segment = tmp_path / "columnar" / "segments" / "seg-000000.seg"
    segment.write_bytes(b"not a segment at all")
    reader = open_store(tmp_path, "columnar")
    with pytest.warns(RuntimeWarning, match="unreadable segment"):
        assert reader.get_entry(DIGESTS[0]) is None


def test_columnar_log_supersedes_segments(tmp_path):
    store = _fill(open_store(tmp_path, "columnar"))
    store.compact()
    store.put(DIGESTS[0], _entry(0)[1], {"objective": 42.0}, None)
    store.flush()
    reader = open_store(tmp_path, "columnar")
    assert reader.get_entry(DIGESTS[0]) == ({"objective": 42.0}, None)
    assert len(reader) == 3


# -- compaction --------------------------------------------------------------


def test_compaction_preserves_entries_and_truncates_log(tmp_path):
    store = _fill(open_store(tmp_path, "columnar"))
    before = sorted(store.entries(), key=lambda e: e.digest)
    store.compact()
    assert (tmp_path / "columnar" / "log.jsonl").read_bytes() == b""
    manifest = json.loads((tmp_path / "columnar" / "MANIFEST.json").read_text())
    assert manifest["segments"] == ["seg-000000.seg"]
    reader = open_store(tmp_path, "columnar")
    assert sorted(reader.entries(), key=lambda e: e.digest) == before
    assert reader.stat().segments == 1
    assert reader.stat().log_entries == 0


def test_compaction_is_byte_deterministic_across_put_order(tmp_path):
    forward = open_store(tmp_path / "fwd", "columnar")
    for i in range(3):
        forward.put(*_entry(i))
    backward = open_store(tmp_path / "bwd", "columnar")
    for i in reversed(range(3)):
        backward.put(*_entry(i))
    forward.flush(), backward.flush()
    forward.compact(), backward.compact()
    assert _tree_bytes(tmp_path / "fwd") == _tree_bytes(tmp_path / "bwd")


def test_recompaction_is_idempotent_on_bytes(tmp_path):
    store = _fill(open_store(tmp_path, "columnar"))
    store.compact()
    first = _tree_bytes(tmp_path)
    open_store(tmp_path, "columnar").compact()
    assert _tree_bytes(tmp_path) == first


# -- migration (satellite: JSON -> columnar round trip is bit-identical) -----


def test_migrate_json_to_columnar_round_trip_bit_identical(tmp_path):
    source = _fill(open_store(tmp_path / "json", "json"), indices=range(4))
    source.put(*_entry(4, state=None))
    source.flush()

    dest = open_store(tmp_path / "col", "columnar")
    assert migrate_store(source, dest) == 5

    source_entries = sorted(source.entries(), key=lambda e: e.digest)
    dest_entries = sorted(
        open_store(tmp_path / "col", "columnar").entries(),
        key=lambda e: e.digest,
    )
    assert dest_entries == source_entries
    for left, right in zip(source_entries, dest_entries):
        assert left.canonical_blob() == right.canonical_blob()
        assert list(left.metrics) == list(right.metrics)
        assert [type(v) for v in left.metrics.values()] == [
            type(v) for v in right.metrics.values()
        ]

    # And back again: columnar -> JSON reproduces the original tree bytes.
    back = open_store(tmp_path / "back", "json")
    assert migrate_store(dest, back) == 5
    assert _tree_bytes(tmp_path / "back") == _tree_bytes(tmp_path / "json")


def test_migrate_is_deterministic_on_bytes(tmp_path):
    source = _fill(open_store(tmp_path / "json", "json"))
    for target in ("one", "two"):
        migrate_store(source, open_store(tmp_path / target, "columnar"))
    assert _tree_bytes(tmp_path / "one") == _tree_bytes(tmp_path / "two")


# -- merge -------------------------------------------------------------------


def test_merge_unions_shards_independent_of_order(tmp_path):
    shard_a = _fill(open_store(tmp_path / "a", "columnar"), indices=[0, 1])
    shard_b = _fill(open_store(tmp_path / "b", "columnar"), indices=[2, 3])
    shard_c = _fill(open_store(tmp_path / "c", "columnar"), indices=[4])

    assert (
        merge_stores([shard_a, shard_b, shard_c], open_store(tmp_path / "abc", "columnar"))
        == 5
    )
    assert (
        merge_stores([shard_c, shard_b, shard_a], open_store(tmp_path / "cba", "columnar"))
        == 5
    )
    assert _tree_bytes(tmp_path / "abc") == _tree_bytes(tmp_path / "cba")
    merged = open_store(tmp_path / "abc", "columnar")
    assert sorted(merged.keys()) == sorted(DIGESTS[:5])


def test_merge_duplicate_digests_resolve_deterministically(tmp_path):
    # The same digest in two shards (re-executed task): ties break by the
    # smallest canonical blob, not by argument order.
    digest = DIGESTS[0]
    left = open_store(tmp_path / "l", "json")
    left.put(digest, {}, {"objective": 1.0}, None)
    right = open_store(tmp_path / "r", "json")
    right.put(digest, {}, {"objective": 2.0}, None)
    left.flush(), right.flush()

    one = open_store(tmp_path / "m1", "json")
    two = open_store(tmp_path / "m2", "json")
    assert merge_stores([left, right], one) == 1
    assert merge_stores([right, left], two) == 1
    assert one.get_entry(digest) == two.get_entry(digest)
    assert _tree_bytes(tmp_path / "m1") == _tree_bytes(tmp_path / "m2")


def test_merge_across_backends(tmp_path):
    shard_json = _fill(open_store(tmp_path / "j", "json"), indices=[0, 1])
    shard_col = _fill(open_store(tmp_path / "c", "columnar"), indices=[2])
    dest = open_store(tmp_path / "m", "columnar")
    assert merge_stores([shard_json, shard_col], dest) == 3
    assert sorted(dest.keys()) == sorted(DIGESTS[:3])


# -- in-place guard (satellite: merge/migrate must refuse dest == source) ----


def test_migrate_refuses_its_own_source(tmp_path):
    source = _fill(open_store(tmp_path / "s", "json"))
    same = open_store(tmp_path / "s", "json")
    with pytest.raises(ConfigurationError, match="onto itself"):
        migrate_store(source, same)
    # The refused operation must not have touched the source.
    assert sorted(open_store(tmp_path / "s", "json").keys()) == sorted(DIGESTS[:3])


def test_merge_refuses_destination_among_sources(tmp_path):
    shard_a = _fill(open_store(tmp_path / "a", "columnar"), indices=[0])
    shard_b = _fill(open_store(tmp_path / "b", "columnar"), indices=[1])
    dest = open_store(tmp_path / "a", "columnar")
    with pytest.raises(ConfigurationError, match="onto itself"):
        merge_stores([shard_a, shard_b], dest)
    with pytest.raises(ConfigurationError, match="onto itself"):
        merge_stores([shard_b, dest], open_store(tmp_path / "b", "columnar"))


def test_merge_refuses_nested_destination_either_way(tmp_path):
    # dest inside a source root, and a source inside the dest root: both
    # directions share files, both must be refused before any write.
    source = _fill(open_store(tmp_path / "s", "json"), indices=[0])
    with pytest.raises(ConfigurationError, match="overlaps"):
        merge_stores([source], open_store(tmp_path / "s" / "nested", "json"))
    outer = open_store(tmp_path / "out", "json")
    inner = _fill(open_store(tmp_path / "out" / "inner", "json"), indices=[1])
    with pytest.raises(ConfigurationError, match="overlaps"):
        merge_stores([inner], outer)
    with pytest.raises(ConfigurationError, match="overlaps"):
        migrate_store(inner, outer)


def test_merge_relative_and_absolute_roots_still_collide(tmp_path, monkeypatch):
    # The guard compares resolved absolute paths, so spelling the same
    # directory two ways does not slip past it.
    monkeypatch.chdir(tmp_path)
    source = _fill(open_store("store", "json"), indices=[0])
    dest = open_store(tmp_path / "store", "json")
    with pytest.raises(ConfigurationError, match="onto itself"):
        migrate_store(source, dest)


# -- shard partitioning ------------------------------------------------------


def test_shard_for_digest_partitions_and_is_stable():
    digests = [f"{i:064x}" for i in range(64)]
    for count in (1, 2, 3, 7):
        shards = [shard_for_digest(d, count) for d in digests]
        assert all(0 <= s < count for s in shards)
        assert shards == [shard_for_digest(d, count) for d in digests]
    assert all(shard_for_digest(d, 1) == 0 for d in digests)
    # The assignment only reads the digest prefix: equal prefixes co-locate.
    assert shard_for_digest("ab" * 32, 4) == shard_for_digest(
        "ab" * 8 + "ff" * 24, 4
    )


# -- packed warm states ------------------------------------------------------


def test_columnar_packs_uniform_states_and_falls_back_on_irregular(tmp_path):
    # Uniform float-only schemas pack into matrices (no per-row state JSON).
    packed = _fill(open_store(tmp_path / "packed", "columnar"))
    packed.compact()
    reader = open_store(tmp_path / "packed", "columnar")
    reader._ensure_loaded()
    assert reader._segments[0].state_packed

    # An int-valued state cannot ride the float matrix without losing its
    # type; the segment must fall back to lossless per-row JSON.
    fallback = open_store(tmp_path / "fallback", "columnar")
    fallback.put(DIGESTS[0], {}, {"m": 1.0}, {"count": 3, "mu": 0.5})
    fallback.put(DIGESTS[1], {}, {"m": 2.0}, {"count": 4, "mu": 1.5})
    fallback.flush()
    fallback.compact()
    reader = open_store(tmp_path / "fallback", "columnar")
    reader._ensure_loaded()
    assert not reader._segments[0].state_packed
    metrics, state = reader.get_entry(DIGESTS[0])
    assert state == {"count": 3, "mu": 0.5}
    assert type(state["count"]) is int
