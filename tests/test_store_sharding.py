"""Tests for hash-sharded sweep execution (``repro run --shard I/N``).

The contract under test: partitioning a sweep's tasks across N shards by
``shard_for_digest(task_hash(task), N)``, running each shard into its own
result store, and merging the shard stores reproduces the serial run
*bit-for-bit* — same store bytes, same exported CSV — regardless of shard
count, shard order, or how unevenly the hash partition lands.
"""

from __future__ import annotations

import pytest

from repro.core.allocator import AllocatorConfig
from repro.exceptions import ConfigurationError
from repro.experiments import SweepConfig, SweepRunner, parse_shard, task_hash
from repro.experiments.base import proposed_tasks
from repro.store import merge_stores, open_store, shard_for_digest

TINY_SWEEP = SweepConfig(
    num_devices=4, num_trials=3, allocator=AllocatorConfig(max_iterations=4)
)


def _tasks(weight: float = 0.5):
    return proposed_tasks(("p",), TINY_SWEEP, weight)


def _tree_bytes(root):
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


# -- parse_shard -------------------------------------------------------------


def test_parse_shard_accepts_specs_and_normalises_trivial():
    assert parse_shard(None) is None
    assert parse_shard("0/1") is None  # one shard selects everything
    assert parse_shard((0, 1)) is None
    assert parse_shard("1/4") == (1, 4)
    assert parse_shard((2, 3)) == (2, 3)


@pytest.mark.parametrize("spec", ["", "3", "a/b", "1/0", "4/4", "-1/2", "2/-2"])
def test_parse_shard_rejects_malformed_specs(spec):
    with pytest.raises(ConfigurationError):
        parse_shard(spec)


# -- runner integration ------------------------------------------------------


def test_sharded_runs_union_to_the_serial_outcome_set(tmp_path):
    tasks = _tasks()
    serial = SweepRunner(jobs=1, use_cache=False).run(tasks)
    count = 2
    by_key: dict = {}
    skipped_total = 0
    for index in range(count):
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / f"shard{index}",
            use_cache=True,
            store_backend="columnar",
            shard=(index, count),
        )
        outcomes = runner.run(tasks)
        assert len(outcomes) == len(tasks)  # skipped tasks keep their slot
        executed = [o for o in outcomes if not o.skipped]
        skipped_total += runner.last_stats.skipped
        assert runner.last_stats.skipped == len(tasks) - len(executed)
        assert runner.last_stats.store_backend == "columnar"
        for outcome in executed:
            assert (
                shard_for_digest(task_hash(outcome.task), count) == index
            )
            by_key[task_hash(outcome.task)] = outcome.metrics
    # Every task ran in exactly one shard, and skips mirror that partition.
    assert len(by_key) == len(tasks)
    assert skipped_total == len(tasks) * (count - 1)
    for outcome in serial:
        assert by_key[task_hash(outcome.task)] == outcome.metrics


def test_skipped_tasks_are_not_failures_and_not_cached(tmp_path):
    tasks = _tasks()
    # Pick the smallest shard count that actually splits the tasks (the
    # hash partition moves whenever the cache-key schema does), then run
    # one non-empty shard so the sweep both executes and skips.
    count = next(
        n
        for n in range(2, len(tasks) + 2)
        if len({shard_for_digest(task_hash(t), n) for t in tasks}) > 1
    )
    index = shard_for_digest(task_hash(tasks[0]), count)
    runner = SweepRunner(
        jobs=1,
        cache_dir=tmp_path,
        use_cache=True,
        store_backend="columnar",
        shard=(index, count),
    )
    outcomes = runner.run(tasks)
    skipped = [o for o in outcomes if o.skipped]
    assert skipped and all(o.metrics is None and o.error is None for o in skipped)
    assert runner.last_stats.failed == 0
    # Only this shard's tasks landed in the store.
    store = open_store(tmp_path, "columnar")
    assert len(store) == len(tasks) - len(skipped)


def test_empty_shard_executes_nothing(tmp_path):
    tasks = _tasks()
    count = len(tasks) * 4  # more shards than tasks: some must be empty
    assignments = {shard_for_digest(task_hash(t), count) for t in tasks}
    empty = next(i for i in range(count) if i not in assignments)
    runner = SweepRunner(
        jobs=1, cache_dir=tmp_path, use_cache=True, shard=(empty, count)
    )
    outcomes = runner.run(tasks)
    assert all(o.skipped for o in outcomes)
    assert runner.last_stats.skipped == len(tasks)
    assert runner.last_stats.executed == 0
    assert len(open_store(tmp_path)) == 0


def test_more_shards_than_tasks_still_covers_every_task(tmp_path):
    tasks = _tasks()
    count = len(tasks) + 5
    executed_keys = []
    for index in range(count):
        runner = SweepRunner(jobs=1, use_cache=False, shard=(index, count))
        outcomes = runner.run(tasks)
        executed_keys.extend(
            task_hash(o.task) for o in outcomes if not o.skipped
        )
    assert sorted(executed_keys) == sorted(task_hash(t) for t in tasks)


def test_duplicate_digests_co_locate_in_one_shard():
    # The same logical task listed twice has one digest, so both copies land
    # in the same shard — a duplicate can never straddle the partition.
    tasks = _tasks() + _tasks()
    count = 3
    for task in tasks:
        digest = task_hash(task)
        shards = {shard_for_digest(digest, count)}
        assert len(shards) == 1


def test_merged_shard_stores_equal_the_serial_store_bit_for_bit(tmp_path):
    tasks = _tasks()
    serial_runner = SweepRunner(
        jobs=1,
        cache_dir=tmp_path / "serial",
        use_cache=True,
        store_backend="columnar",
    )
    serial_runner.run(tasks)
    serial_store = open_store(tmp_path / "serial", "columnar")
    serial_store.compact()

    count = 3
    shards = []
    for index in range(count):
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / f"shard{index}",
            use_cache=True,
            store_backend="columnar",
            shard=(index, count),
        )
        runner.run(tasks)
        shards.append(open_store(tmp_path / f"shard{index}", "columnar"))

    merge_stores(shards, open_store(tmp_path / "fwd", "columnar"))
    merge_stores(list(reversed(shards)), open_store(tmp_path / "rev", "columnar"))
    assert _tree_bytes(tmp_path / "fwd") == _tree_bytes(tmp_path / "rev")
    assert _tree_bytes(tmp_path / "fwd") == _tree_bytes(tmp_path / "serial")


def test_merged_store_serves_a_cached_rerun(tmp_path):
    tasks = _tasks()
    count = 2
    shards = []
    for index in range(count):
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / f"shard{index}",
            use_cache=True,
            store_backend="columnar",
            shard=(index, count),
        )
        runner.run(tasks)
        shards.append(open_store(tmp_path / f"shard{index}", "columnar"))
    merge_stores(shards, open_store(tmp_path / "merged", "columnar"))

    rerun = SweepRunner(jobs=1, cache_dir=tmp_path / "merged", use_cache=True)
    outcomes = rerun.run(tasks)
    assert rerun.last_stats.cache_hits == len(tasks)
    assert rerun.last_stats.executed == 0
    assert all(o.cached for o in outcomes)


def _warm_chain_tasks():
    """A tiny p_max axis whose proposed tasks chain along warm_order."""
    from dataclasses import replace

    tasks = []
    for p_max_dbm in (6.0, 9.0, 12.0):
        sweep = replace(TINY_SWEEP, max_power_dbm=p_max_dbm)
        tasks += proposed_tasks(
            ("p", p_max_dbm),
            sweep,
            0.5,
            warm_group=("chain",),
            warm_order=p_max_dbm,
        )
    return tasks


def test_sharded_warm_runs_are_bit_identical_to_serial(tmp_path):
    # satellite: shard x warm-start interaction.  Warm chains are a
    # scheduling hint only — a sharded warm run, whose chains are punctured
    # by skipped (other-shard) tasks, must still produce the exact serial
    # metrics, and the merged shard stores must equal the serial warm store
    # bit for bit.
    tasks = _warm_chain_tasks()
    serial_runner = SweepRunner(
        jobs=1,
        cache_dir=tmp_path / "serial",
        use_cache=True,
        store_backend="columnar",
        warm_start=True,
    )
    serial = {task_hash(o.task): o.metrics for o in serial_runner.run(tasks)}

    count = 3
    shards = []
    by_key: dict = {}
    for index in range(count):
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / f"shard{index}",
            use_cache=True,
            store_backend="columnar",
            warm_start=True,
            shard=(index, count),
        )
        outcomes = runner.run(tasks)
        assert runner.last_stats.failed == 0
        for outcome in outcomes:
            if not outcome.skipped:
                by_key[task_hash(outcome.task)] = outcome.metrics
        shards.append(open_store(tmp_path / f"shard{index}", "columnar"))

    assert by_key == serial

    serial_store = open_store(tmp_path / "serial", "columnar")
    serial_store.compact()
    merge_stores(shards, open_store(tmp_path / "merged", "columnar"))
    assert _tree_bytes(tmp_path / "merged") == _tree_bytes(tmp_path / "serial")


def test_warm_chains_skip_other_shard_tasks_deterministically(tmp_path):
    # A chain whose middle point lands in another shard must restart cold
    # after the gap rather than crash or warm-start across it: running the
    # same shard twice (fresh stores) is bit-identical, and a cold unsharded
    # run of the same tasks agrees on every executed metric.
    tasks = _warm_chain_tasks()
    cold = {
        task_hash(o.task): o.metrics
        for o in SweepRunner(jobs=1, use_cache=False).run(tasks)
    }
    count = 2
    for index in range(count):
        first = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / f"one{index}",
            use_cache=True,
            warm_start=True,
            shard=(index, count),
        ).run(tasks)
        second = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / f"two{index}",
            use_cache=True,
            warm_start=True,
            shard=(index, count),
        ).run(tasks)
        assert [o.skipped for o in first] == [o.skipped for o in second]
        for left, right in zip(first, second):
            assert left.metrics == right.metrics
            if not left.skipped:
                assert left.metrics == cold[task_hash(left.task)]


def test_result_table_csv_identical_across_store_backends(tmp_path):
    # The store backend is pure addressing: a sweep served from a columnar
    # cache must export byte-identical CSV to one served from the JSON
    # oracle (and to the uncached run).
    from repro.experiments import SamplesConfig, run_samples_sweep

    config = SamplesConfig(sweep=TINY_SWEEP)
    paths = {}
    for backend in ("json", "columnar"):
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / backend,
            use_cache=True,
            store_backend=backend,
        )
        run_samples_sweep(config, runner=runner)  # populate the cache
        table = run_samples_sweep(config, runner=runner)  # then serve from it
        assert runner.last_stats.cache_hits == runner.last_stats.total
        paths[backend] = tmp_path / f"{backend}.csv"
        table.to_csv(paths[backend])
    uncached = run_samples_sweep(config, runner=SweepRunner(jobs=1, use_cache=False))
    uncached.to_csv(tmp_path / "uncached.csv")
    assert paths["json"].read_bytes() == paths["columnar"].read_bytes()
    assert paths["json"].read_bytes() == (tmp_path / "uncached.csv").read_bytes()
