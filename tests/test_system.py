"""Tests for the SystemModel cost accounting (eqs. (1)-(7))."""

import numpy as np
import pytest

from repro import build_paper_scenario
from repro.devices import generate_fleet
from repro.exceptions import ConfigurationError
from repro.system import SystemModel


@pytest.fixture(scope="module")
def system():
    return build_paper_scenario(num_devices=8, seed=0)


def _equal_allocation(system):
    n = system.num_devices
    power = system.max_power_w.copy()
    bandwidth = np.full(n, system.total_bandwidth_hz / n)
    frequency = system.max_frequency_hz.copy()
    return power, bandwidth, frequency


def test_array_views_are_consistent(system):
    n = system.num_devices
    assert system.gains.shape == (n,)
    assert system.cycles_per_round.shape == (n,)
    assert np.allclose(
        system.cycles_per_round,
        system.local_iterations * system.cycles_per_sample * system.num_samples,
    )


def test_computation_time_and_energy_formulas(system):
    freq = np.full(system.num_devices, 1e9)
    times = system.computation_time_s(freq)
    energies = system.computation_energy_j(freq)
    assert np.allclose(times, system.cycles_per_round / 1e9)
    assert np.allclose(
        energies, system.effective_capacitance * system.cycles_per_round * 1e18
    )


def test_upload_time_and_energy(system):
    power, bandwidth, _ = _equal_allocation(system)
    rates = system.rates_bps(power, bandwidth)
    times = system.upload_time_s(power, bandwidth)
    energies = system.upload_energy_j(power, bandwidth)
    assert np.allclose(times, system.upload_bits / rates)
    assert np.allclose(energies, power * times)


def test_round_time_is_max_over_devices(system):
    power, bandwidth, frequency = _equal_allocation(system)
    per_device = system.per_device_round_time_s(power, bandwidth, frequency)
    assert system.round_time_s(power, bandwidth, frequency) == pytest.approx(
        float(np.max(per_device))
    )


def test_totals_scale_with_global_rounds(system):
    power, bandwidth, frequency = _equal_allocation(system)
    energy = system.total_energy_j(power, bandwidth, frequency)
    time = system.total_completion_time_s(power, bandwidth, frequency)
    doubled = system.with_schedule(global_rounds=2 * system.global_rounds)
    assert doubled.total_energy_j(power, bandwidth, frequency) == pytest.approx(2 * energy)
    assert doubled.total_completion_time_s(power, bandwidth, frequency) == pytest.approx(2 * time)


def test_energy_breakdown_sums_to_total(system):
    power, bandwidth, frequency = _equal_allocation(system)
    trans, comp = system.energy_breakdown_j(power, bandwidth, frequency)
    assert trans + comp == pytest.approx(system.total_energy_j(power, bandwidth, frequency))
    assert trans > 0 and comp > 0


def test_with_max_power_and_frequency_copies(system):
    capped = system.with_max_power_w(0.005).with_max_frequency_hz(1e9)
    assert np.all(capped.max_power_w == 0.005)
    assert np.all(capped.max_frequency_hz == 1e9)
    assert np.all(system.max_frequency_hz == 2e9)
    assert np.allclose(capped.gains, system.gains)


def test_invalid_construction_rejected(system):
    fleet = generate_fleet(4, rng=0)
    with pytest.raises(ConfigurationError):
        SystemModel(fleet=fleet, gains=np.ones(3) * 1e-10)
    with pytest.raises(ConfigurationError):
        SystemModel(fleet=fleet, gains=np.array([1e-10, 0.0, 1e-10, 1e-10]))
    with pytest.raises(ConfigurationError):
        SystemModel(fleet=fleet, gains=np.ones(4) * 1e-10, total_bandwidth_hz=0.0)
    with pytest.raises(ConfigurationError):
        SystemModel(fleet=fleet, gains=np.ones(4) * 1e-10, global_rounds=0)
    with pytest.raises(ConfigurationError):
        system.with_fleet(generate_fleet(3, rng=0))


def test_computation_time_requires_positive_frequency(system):
    with pytest.raises(ValueError):
        system.computation_time_s(np.zeros(system.num_devices))


def test_with_gains_replaces_gains_and_drops_stale_channel_state(tiny_system):
    import numpy as np

    new_gains = tiny_system.gains * 2.0
    updated = tiny_system.with_gains(new_gains)
    assert np.array_equal(updated.gains, new_gains)
    assert updated.channel_state is None  # the old state no longer matches
    assert updated.fleet is tiny_system.fleet
    assert updated.total_bandwidth_hz == tiny_system.total_bandwidth_hz
    # The original is untouched (frozen dataclass semantics).
    assert not np.array_equal(tiny_system.gains, new_gains)


def test_with_gains_validates_like_the_constructor(tiny_system):
    import numpy as np
    import pytest

    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        tiny_system.with_gains(np.zeros(tiny_system.num_devices))
    with pytest.raises(ConfigurationError):
        tiny_system.with_gains(tiny_system.gains[:-1])
