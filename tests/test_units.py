"""Unit-conversion tests."""

import math

import pytest

from repro import units


def test_dbm_to_watt_known_values():
    assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)
    assert units.dbm_to_watt(30.0) == pytest.approx(1.0)
    assert units.dbm_to_watt(12.0) == pytest.approx(10 ** 1.2 * 1e-3)


def test_watt_to_dbm_roundtrip():
    for dbm in (-20.0, 0.0, 12.0, 23.5):
        assert units.watt_to_dbm(units.dbm_to_watt(dbm)) == pytest.approx(dbm)


def test_watt_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.watt_to_dbm(0.0)
    with pytest.raises(ValueError):
        units.watt_to_dbm(-1.0)


def test_db_linear_roundtrip():
    for db in (-30.0, 0.0, 3.0, 10.0):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)


def test_linear_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.linear_to_db(0.0)


def test_noise_psd_conversion():
    # -174 dBm/Hz is the standard thermal noise floor ~ 4e-21 W/Hz.
    value = units.dbm_per_hz_to_watt_per_hz(-174.0)
    assert value == pytest.approx(10 ** (-17.4) * 1e-3)
    assert 3.9e-21 < value < 4.1e-21


def test_frequency_conversions():
    assert units.mhz_to_hz(20.0) == 20e6
    assert units.hz_to_mhz(20e6) == pytest.approx(20.0)
    assert units.ghz_to_hz(2.0) == 2e9
    assert units.hz_to_ghz(2e9) == pytest.approx(2.0)


def test_data_size_conversions():
    assert units.kbit_to_bit(28.1) == pytest.approx(28100.0)
    assert units.bit_to_kbit(28100.0) == pytest.approx(28.1)
    assert units.mbit_to_bit(1.5) == pytest.approx(1.5e6)


def test_distance_conversions():
    assert units.km_to_m(0.25) == pytest.approx(250.0)
    assert units.m_to_km(250.0) == pytest.approx(0.25)


def test_db_to_linear_is_exponential():
    assert units.db_to_linear(10.0) == pytest.approx(10.0)
    assert units.db_to_linear(3.0) == pytest.approx(math.pow(10, 0.3))
