"""Warm-started sweeps: chain scheduling, state plumbing and the parity gate.

The parity test is the warm-start correctness contract: a ``--warm-start``
sweep must reproduce the cold sweep's tables within ``1e-6`` relative — the
warm path may only change how much work the solvers do, never (beyond
round-off) what they return.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocator import AllocatorConfig
from repro.experiments.base import SweepConfig, proposed_tasks
from repro.experiments.fig2 import Fig2Config, run_fig2
from repro.experiments.runner import (
    SweepRunner,
    allocation_from_state,
    task_hash,
    warm_solver_kinds,
)

PARITY_RTOL = 1e-6

TINY_FIG2 = Fig2Config(
    sweep=SweepConfig(num_devices=8, num_trials=2, allocator=AllocatorConfig(max_iterations=6)),
    max_power_dbm_grid=(5.0, 8.0, 12.0),
    weight_pairs=((0.9, 0.1), (0.1, 0.9)),
    include_benchmark=False,
)


def _tables_match(cold, warm, rtol=PARITY_RTOL):
    assert cold.columns == warm.columns
    assert len(cold) == len(warm)
    for cold_row, warm_row in zip(cold.rows, warm.rows):
        for column in ("energy_j", "time_s", "objective"):
            assert warm_row[column] == pytest.approx(cold_row[column], rel=rtol), (
                f"column {column} diverged at row {cold_row}"
            )


# -- the parity gate ----------------------------------------------------------

def test_fig2_warm_start_matches_cold_start_within_tolerance():
    cold = run_fig2(TINY_FIG2, runner=SweepRunner(jobs=1, use_cache=False))
    warm_runner = SweepRunner(jobs=1, use_cache=False, warm_start=True)
    warm = run_fig2(TINY_FIG2, runner=warm_runner)
    _tables_match(cold, warm)
    assert warm_runner.last_stats.warm_started > 0


def test_fig2_warm_start_parity_holds_under_process_parallelism():
    cold = run_fig2(TINY_FIG2, runner=SweepRunner(jobs=1, use_cache=False))
    warm = run_fig2(TINY_FIG2, runner=SweepRunner(jobs=4, use_cache=False, warm_start=True))
    _tables_match(cold, warm)


def test_warm_start_preserves_iteration_counts():
    # The trajectory-preserving contract is stronger than metric parity:
    # the warm path must walk the same iterates, so outer/inner iteration
    # totals are identical to the cold run's.
    collect_cold, collect_warm = [], []
    run_fig2(
        TINY_FIG2,
        runner=SweepRunner(jobs=1, progress=lambda d, t, o: collect_cold.append(o)),
    )
    run_fig2(
        TINY_FIG2,
        runner=SweepRunner(
            jobs=1, warm_start=True, progress=lambda d, t, o: collect_warm.append(o)
        ),
    )
    total = lambda outs, key: sum(o.metrics[key] for o in outs if o.ok)  # noqa: E731
    assert total(collect_warm, "iterations") == total(collect_cold, "iterations")
    assert total(collect_warm, "inner_iterations") == total(collect_cold, "inner_iterations")


# -- chain construction and cache interplay ----------------------------------

def test_warm_key_does_not_affect_the_cache_key():
    sweep = SweepConfig(num_devices=6, num_trials=1)
    [plain] = proposed_tasks(("p",), sweep, 0.5)
    [chained] = proposed_tasks(("p",), sweep, 0.5, warm_group=("axis",), warm_order=3.0)
    assert plain.warm_key is None and chained.warm_key == ("axis", 0)
    assert task_hash(plain) == task_hash(chained)


def test_proposed_kind_is_registered_warm_capable():
    assert "proposed" in warm_solver_kinds()


def test_outcomes_stay_in_task_order_with_warm_chains():
    tasks = TINY_FIG2.tasks()
    outcomes = SweepRunner(jobs=1, use_cache=False, warm_start=True).run(tasks)
    assert [o.task.key for o in outcomes] == [t.key for t in tasks]
    assert all(o.ok for o in outcomes)


def test_warm_chain_seeds_through_cache_hits(tmp_path):
    tasks = TINY_FIG2.tasks()
    runner = SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=True, warm_start=True)
    first = runner.run(tasks)
    assert all(o.state is not None for o in first)
    assert all("mu" in o.state for o in first)

    # Second run: everything cached, states come back from disk.
    second = runner.run(tasks)
    assert runner.last_stats.cache_hits == len(tasks)
    assert all(o.cached and o.state is not None for o in second)

    # Third run with the first grid point evicted: the re-executed tasks sit
    # mid-chain and must be seeded from their cached neighbour's state.
    for task in tasks:
        if task.warm_order != 5.0:
            continue
        runner.cache._path(task_hash(task)).unlink()
    third = runner.run(tasks)
    assert runner.last_stats.executed > 0
    assert all(o.ok for o in third)


def test_warm_runner_without_warm_keys_behaves_like_cold():
    sweep = SweepConfig(num_devices=6, num_trials=2, allocator=AllocatorConfig(max_iterations=4))
    tasks = proposed_tasks(("p",), sweep, 0.5)  # no warm_group
    outcomes = SweepRunner(jobs=1, use_cache=False, warm_start=True).run(tasks)
    assert all(not o.warm for o in outcomes)


def test_task_timings_travel_with_outcomes():
    sweep = SweepConfig(num_devices=6, num_trials=1, allocator=AllocatorConfig(max_iterations=4))
    [outcome] = SweepRunner(jobs=1, use_cache=False).run(proposed_tasks(("p",), sweep, 0.5))
    assert outcome.timings is not None
    for name in ("scenario_build", "solve", "algorithm2", "sp2"):
        assert outcome.timings.get(name, 0.0) > 0.0


# -- warm-state reconstruction ------------------------------------------------

def _state_for(system, scale=1.0):
    n = system.num_devices
    return {
        "power_w": (system.max_power_w * 0.9).tolist(),
        "bandwidth_hz": np.full(n, scale * system.total_bandwidth_hz / n).tolist(),
        "frequency_hz": system.max_frequency_hz.tolist(),
        "mu": 1e-9,
    }


def test_allocation_from_state_round_trips(tiny_system):
    allocation = allocation_from_state(tiny_system, _state_for(tiny_system, scale=0.5))
    assert allocation is not None
    assert allocation.bandwidth_hz.sum() <= tiny_system.total_bandwidth_hz * (1 + 1e-9)


def test_allocation_from_state_rescales_an_over_budget_split(tiny_system):
    allocation = allocation_from_state(tiny_system, _state_for(tiny_system, scale=2.0))
    assert allocation is not None
    assert allocation.bandwidth_hz.sum() == pytest.approx(
        tiny_system.total_bandwidth_hz, rel=1e-9
    )


def test_allocation_from_state_rejects_wrong_fleet_size(tiny_system):
    state = _state_for(tiny_system)
    state["power_w"] = state["power_w"][:-1]
    assert allocation_from_state(tiny_system, state) is None


def test_allocation_from_state_rejects_unusable_values(tiny_system):
    state = _state_for(tiny_system)
    state["bandwidth_hz"] = [0.0] * tiny_system.num_devices
    assert allocation_from_state(tiny_system, state) is None
    state = _state_for(tiny_system)
    state["frequency_hz"][0] = float("nan")
    assert allocation_from_state(tiny_system, state) is None
    assert allocation_from_state(tiny_system, {"power_w": "garbage"}) is None
