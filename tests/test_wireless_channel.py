"""Tests for the channel model (path loss + shadowing -> gains)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import (
    ChannelModel,
    ChannelState,
    LogNormalShadowing,
    uniform_disc_topology,
)


@pytest.fixture()
def topology():
    return uniform_disc_topology(40, radius_km=0.25, rng=0)


def test_realize_produces_positive_gains(topology):
    state = ChannelModel().realize(topology, rng=0)
    assert state.num_devices == 40
    assert np.all(state.gains > 0.0)
    assert np.all(np.isfinite(state.gains))


def test_gains_combine_pathloss_and_shadowing(topology):
    state = ChannelModel().realize(topology, rng=1)
    reconstructed = 10.0 ** (-(state.path_loss_db + state.shadowing_db) / 10.0)
    assert np.allclose(state.gains, reconstructed)
    assert np.allclose(state.total_loss_db(), state.path_loss_db + state.shadowing_db)


def test_no_shadowing_gains_decrease_with_distance(topology):
    model = ChannelModel(shadowing=LogNormalShadowing(std_db=0.0))
    state = model.realize(topology, rng=2)
    order = np.argsort(state.distances_km)
    assert np.all(np.diff(state.gains[order]) <= 1e-20)


def test_same_seed_reproducible(topology):
    model = ChannelModel()
    a = model.realize(topology, rng=3)
    b = model.realize(topology, rng=3)
    assert np.allclose(a.gains, b.gains)


def test_subset_selects_devices(topology):
    state = ChannelModel().realize(topology, rng=4)
    subset = state.subset(np.array([0, 5]))
    assert subset.num_devices == 2
    assert subset.gains[1] == state.gains[5]


def test_mean_gain_includes_shadowing_margin():
    model = ChannelModel()
    no_shadow = ChannelModel(shadowing=LogNormalShadowing(std_db=0.0))
    assert model.mean_gain_at(0.2) > no_shadow.mean_gain_at(0.2)


def test_channel_state_rejects_nonpositive_gains():
    with pytest.raises(ConfigurationError):
        ChannelState(
            gains=np.array([1e-10, 0.0]),
            distances_km=np.array([0.1, 0.2]),
            path_loss_db=np.array([100.0, 110.0]),
            shadowing_db=np.zeros(2),
        )
