"""Tests for the small-scale fading models and their registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import (
    ChannelModel,
    NakagamiFading,
    RayleighFading,
    RicianFading,
    fading_models,
    make_fading,
    uniform_disc_topology,
)

ALL_MODELS = [RayleighFading(), RicianFading(k_db=6.0), NakagamiFading(m=2.0)]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_unit_mean_power(model):
    draws = model.sample_linear(200_000, rng=0)
    assert np.all(draws > 0.0)
    assert np.mean(draws) == pytest.approx(1.0, rel=0.02)


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_seed_determinism(model):
    a = model.sample_linear(50, rng=np.random.default_rng(7))
    b = model.sample_linear(50, rng=np.random.default_rng(7))
    c = model.sample_linear(50, rng=np.random.default_rng(8))
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_sample_db_matches_linear(model):
    rng_lin, rng_db = np.random.default_rng(3), np.random.default_rng(3)
    linear = model.sample_linear(20, rng_lin)
    db = model.sample_db(20, rng_db)
    assert np.allclose(db, 10.0 * np.log10(linear))


def test_larger_rician_k_concentrates_the_distribution():
    weak = RicianFading(k_db=0.0).sample_linear(100_000, rng=1)
    strong = RicianFading(k_db=15.0).sample_linear(100_000, rng=1)
    assert np.var(strong) < np.var(weak)


def test_larger_nakagami_m_concentrates_the_distribution():
    mild = NakagamiFading(m=1.0).sample_linear(100_000, rng=1)
    milder = NakagamiFading(m=4.0).sample_linear(100_000, rng=1)
    assert np.var(milder) < np.var(mild)


def test_invalid_parameters_raise():
    with pytest.raises(ConfigurationError):
        NakagamiFading(m=0.25)
    with pytest.raises(ConfigurationError):
        RayleighFading(floor=0.0)
    with pytest.raises(ConfigurationError):
        RayleighFading().sample_linear(0)


def test_registry_lists_and_constructs_models():
    assert {"rayleigh", "rician", "nakagami"} <= set(fading_models())
    model = make_fading("rician", k_db=9.0)
    assert isinstance(model, RicianFading) and model.k_db == 9.0


def test_unknown_fading_name_lists_known():
    with pytest.raises(ConfigurationError, match="rayleigh"):
        make_fading("weibull")


# -- channel integration -----------------------------------------------------

def test_channel_with_fading_records_loss_and_changes_gains():
    topology = uniform_disc_topology(12, 0.25, rng=0)
    plain = ChannelModel().realize(topology, rng=np.random.default_rng(5))
    faded = ChannelModel(fading=RayleighFading()).realize(
        topology, rng=np.random.default_rng(5)
    )
    assert np.all(plain.fading_db == 0.0)
    assert not np.array_equal(faded.gains, plain.gains)
    assert np.any(faded.fading_db != 0.0)
    assert np.allclose(
        faded.gains, 10.0 ** (-(faded.total_loss_db()) / 10.0)
    )


def test_channel_extra_loss_db_is_applied_per_device():
    topology = uniform_disc_topology(4, 0.25, rng=0)
    extra = np.array([0.0, 10.0, 20.0, 30.0])
    plain = ChannelModel().realize(topology, rng=np.random.default_rng(2))
    lossy = ChannelModel().realize(
        topology, rng=np.random.default_rng(2), extra_loss_db=extra
    )
    assert np.allclose(lossy.gains, plain.gains * 10.0 ** (-extra / 10.0))


def test_channel_subset_keeps_fading():
    topology = uniform_disc_topology(6, 0.25, rng=0)
    state = ChannelModel(fading=NakagamiFading()).realize(
        topology, rng=np.random.default_rng(1)
    )
    subset = state.subset(np.array([1, 3]))
    assert np.array_equal(subset.fading_db, state.fading_db[[1, 3]])
