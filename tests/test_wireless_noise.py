"""Tests for the receiver noise model."""

import numpy as np
import pytest

from repro import constants
from repro.exceptions import ConfigurationError
from repro.wireless import NoiseModel


def test_default_matches_paper_psd():
    model = NoiseModel()
    assert model.psd_w_per_hz == pytest.approx(constants.NOISE_PSD_W_PER_HZ)
    assert model.psd_dbm_per_hz() == pytest.approx(-174.0)


def test_noise_power_scales_linearly_with_bandwidth():
    model = NoiseModel()
    assert model.power_w(2e6) == pytest.approx(2.0 * model.power_w(1e6))
    assert model.power_w(0.0) == 0.0


def test_from_dbm_per_hz_roundtrip():
    model = NoiseModel.from_dbm_per_hz(-170.0)
    assert model.psd_dbm_per_hz() == pytest.approx(-170.0)


def test_noise_figure_raises_effective_psd():
    quiet = NoiseModel()
    noisy = NoiseModel(noise_figure_db=6.0)
    assert noisy.effective_psd_w_per_hz == pytest.approx(
        quiet.effective_psd_w_per_hz * 10 ** 0.6
    )


def test_vectorised_bandwidths():
    model = NoiseModel()
    bw = np.array([1e5, 1e6, 1e7])
    power = model.power_w(bw)
    assert power.shape == (3,)
    assert np.all(np.diff(power) > 0)


def test_invalid_arguments_rejected():
    with pytest.raises(ConfigurationError):
        NoiseModel(psd_w_per_hz=0.0)
    with pytest.raises(ConfigurationError):
        NoiseModel(noise_figure_db=-1.0)
    with pytest.raises(ValueError):
        NoiseModel().power_w(-1.0)
