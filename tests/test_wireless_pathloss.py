"""Tests for the log-distance path-loss model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import LogDistancePathLoss


def test_paper_model_at_one_kilometre():
    model = LogDistancePathLoss()
    # At 1 km the log term vanishes: loss equals the 128.1 dB intercept.
    assert model.loss_db(1.0) == pytest.approx(128.1)


def test_loss_grows_with_distance():
    model = LogDistancePathLoss()
    distances = np.array([0.05, 0.1, 0.25, 0.5, 1.0, 2.0])
    losses = model.loss_db(distances)
    assert np.all(np.diff(losses) > 0.0)


def test_slope_is_37_6_db_per_decade():
    model = LogDistancePathLoss()
    assert model.loss_db(1.0) - model.loss_db(0.1) == pytest.approx(37.6)


def test_gain_is_inverse_of_loss():
    model = LogDistancePathLoss()
    loss = model.loss_db(0.3)
    assert model.gain_linear(0.3) == pytest.approx(10 ** (-loss / 10.0))


def test_minimum_distance_clamps_the_singularity():
    model = LogDistancePathLoss(min_distance_km=1e-3)
    assert model.loss_db(0.0) == model.loss_db(1e-3)
    assert np.isfinite(model.loss_db(0.0))


def test_free_space_variant_has_20db_per_decade():
    model = LogDistancePathLoss.free_space(frequency_ghz=2.0)
    assert model.slope_db_per_decade == pytest.approx(20.0)
    assert model.loss_db(1.0) < LogDistancePathLoss().loss_db(1.0)


def test_coherence_distance_inverts_the_model():
    model = LogDistancePathLoss()
    target = 110.0
    distance = model.coherence_distance_km(target)
    assert model.loss_db(distance) == pytest.approx(target, abs=1e-9)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        LogDistancePathLoss(slope_db_per_decade=0.0)
    with pytest.raises(ConfigurationError):
        LogDistancePathLoss(min_distance_km=0.0)
