"""Tests for the Shannon-rate helpers (eq. (1)) and their inverses."""

import numpy as np
import pytest

from repro import constants
from repro.wireless.rate import (
    min_bandwidth_for_rate,
    rate_jacobian,
    required_power_for_rate,
    shannon_rate,
    spectral_efficiency,
)

N0 = constants.NOISE_PSD_W_PER_HZ


def test_rate_matches_formula():
    p, b, g = 0.01, 1e6, 1e-10
    expected = b * np.log2(1.0 + g * p / (N0 * b))
    assert shannon_rate(p, b, g, N0) == pytest.approx(expected)


def test_zero_bandwidth_gives_zero_rate():
    assert shannon_rate(0.01, 0.0, 1e-10, N0) == 0.0


def test_rate_is_increasing_in_power_and_bandwidth():
    g = 1e-10
    rates_p = shannon_rate(np.linspace(1e-4, 0.02, 20), 1e6, g, N0)
    rates_b = shannon_rate(0.01, np.linspace(1e5, 2e7, 20), g, N0)
    assert np.all(np.diff(rates_p) > 0)
    assert np.all(np.diff(rates_b) > 0)


def test_rate_is_concave_in_bandwidth():
    g = 1e-10
    bw = np.linspace(1e5, 1e7, 200)
    rates = shannon_rate(0.01, bw, g, N0)
    second_diff = np.diff(rates, 2)
    assert np.all(second_diff <= 1e-6)


def test_spectral_efficiency_is_rate_per_hertz():
    p, b, g = 0.005, 5e5, 2e-11
    assert spectral_efficiency(p, b, g, N0) == pytest.approx(
        shannon_rate(p, b, g, N0) / b
    )


def test_required_power_inverts_the_rate():
    g = 5e-11
    b = 4e5
    target = 1.2e6
    p = required_power_for_rate(target, b, g, N0)
    assert shannon_rate(p, b, g, N0) == pytest.approx(target, rel=1e-10)


def test_required_power_edge_cases():
    assert required_power_for_rate(0.0, 1e6, 1e-10, N0) == 0.0
    assert required_power_for_rate(1e6, 0.0, 1e-10, N0) == np.inf


def test_min_bandwidth_inverts_the_rate():
    g = np.array([1e-10, 5e-11, 2e-12])
    p = 0.01
    target = np.array([1e6, 5e5, 1e5])
    bw = min_bandwidth_for_rate(target, p, g, N0, bandwidth_cap_hz=2e7)
    achieved = shannon_rate(p, bw, g, N0)
    assert np.allclose(achieved, target, rtol=1e-6)


def test_min_bandwidth_unreachable_target_is_infinite():
    # Essentially no channel gain: the target cannot be met within the cap.
    bw = min_bandwidth_for_rate(np.array([1e9]), 0.001, np.array([1e-18]), N0, bandwidth_cap_hz=2e7)
    assert np.isinf(bw[0])


def test_min_bandwidth_zero_target_is_zero():
    bw = min_bandwidth_for_rate(np.array([0.0]), 0.01, np.array([1e-10]), N0, bandwidth_cap_hz=2e7)
    assert bw[0] == 0.0


def test_jacobian_matches_finite_differences():
    p, b, g = 0.008, 7e5, 8e-11
    dr_dp, dr_db = rate_jacobian(np.array([p]), np.array([b]), np.array([g]), N0)
    eps_p, eps_b = 1e-9, 1e-2
    fd_p = (shannon_rate(p + eps_p, b, g, N0) - shannon_rate(p - eps_p, b, g, N0)) / (2 * eps_p)
    fd_b = (shannon_rate(p, b + eps_b, g, N0) - shannon_rate(p, b - eps_b, g, N0)) / (2 * eps_b)
    assert dr_dp[0] == pytest.approx(fd_p, rel=1e-5)
    assert dr_db[0] == pytest.approx(fd_b, rel=1e-4)


def test_lemma1_concavity_via_random_midpoints():
    # Lemma 1: G(p, B) is jointly concave.  Check midpoint concavity on
    # random pairs of points.
    rng = np.random.default_rng(0)
    g = 1e-10
    for _ in range(100):
        p1, p2 = rng.uniform(1e-4, 0.02, size=2)
        b1, b2 = rng.uniform(1e4, 2e7, size=2)
        mid = shannon_rate(0.5 * (p1 + p2), 0.5 * (b1 + b2), g, N0)
        average = 0.5 * (shannon_rate(p1, b1, g, N0) + shannon_rate(p2, b2, g, N0))
        assert mid >= average - 1e-6
