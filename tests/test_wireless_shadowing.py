"""Tests for log-normal shadow fading."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import LogNormalShadowing


def test_samples_have_requested_std():
    model = LogNormalShadowing(std_db=8.0, clip_sigmas=10.0)
    draws = model.sample_db(200_000, rng=0)
    assert np.std(draws) == pytest.approx(8.0, rel=0.02)
    assert np.mean(draws) == pytest.approx(0.0, abs=0.1)


def test_samples_are_clipped():
    model = LogNormalShadowing(std_db=8.0, clip_sigmas=2.0)
    draws = model.sample_db(100_000, rng=1)
    assert np.max(np.abs(draws)) <= 16.0 + 1e-9


def test_zero_std_gives_zero_shadowing():
    model = LogNormalShadowing(std_db=0.0)
    draws = model.sample_db(100, rng=2)
    assert np.allclose(draws, 0.0)


def test_linear_samples_match_db_samples():
    model = LogNormalShadowing(std_db=8.0)
    db = model.sample_db(50, rng=3)
    linear = model.sample_linear(50, rng=3)
    assert np.allclose(linear, 10.0 ** (db / 10.0))


def test_reproducible_with_seed():
    model = LogNormalShadowing()
    assert np.allclose(model.sample_db(10, rng=5), model.sample_db(10, rng=5))


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        LogNormalShadowing(std_db=-1.0)
    with pytest.raises(ConfigurationError):
        LogNormalShadowing(clip_sigmas=0.0)
    with pytest.raises(ConfigurationError):
        LogNormalShadowing().sample_db(0)
