"""Tests for the FDMA spectrum manager."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import BandwidthAllocation, SpectrumManager


def test_equal_split_uses_whole_budget():
    manager = SpectrumManager(total_bandwidth_hz=20e6)
    allocation = manager.equal_split(10)
    assert np.allclose(allocation.bandwidth_hz, 2e6)
    assert allocation.used_hz == pytest.approx(20e6)
    assert allocation.utilization == pytest.approx(1.0)
    assert allocation.is_feasible()


def test_half_split_matches_paper_initialisation():
    manager = SpectrumManager(total_bandwidth_hz=20e6)
    allocation = manager.equal_split(50, fraction=0.5)
    assert np.allclose(allocation.bandwidth_hz, 20e6 / 100)
    assert allocation.slack_hz == pytest.approx(10e6)


def test_proportional_split_follows_weights():
    manager = SpectrumManager(total_bandwidth_hz=10e6)
    allocation = manager.proportional_split(np.array([1.0, 3.0]))
    assert allocation.bandwidth_hz[1] == pytest.approx(3.0 * allocation.bandwidth_hz[0])
    assert allocation.used_hz == pytest.approx(10e6)


def test_allocate_rejects_over_budget_without_normalize():
    manager = SpectrumManager(total_bandwidth_hz=1e6)
    with pytest.raises(ConfigurationError):
        manager.allocate(np.array([8e5, 8e5]))


def test_allocate_normalizes_when_requested():
    manager = SpectrumManager(total_bandwidth_hz=1e6)
    allocation = manager.allocate(np.array([8e5, 8e5]), normalize=True)
    assert allocation.used_hz == pytest.approx(1e6)
    assert np.allclose(allocation.bandwidth_hz, 5e5)


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigurationError):
        SpectrumManager(total_bandwidth_hz=0.0)
    manager = SpectrumManager()
    with pytest.raises(ConfigurationError):
        manager.equal_split(0)
    with pytest.raises(ConfigurationError):
        manager.equal_split(5, fraction=0.0)
    with pytest.raises(ConfigurationError):
        manager.proportional_split(np.array([0.0, 0.0]))
    with pytest.raises(ConfigurationError):
        manager.proportional_split(np.array([-1.0, 2.0]))
    with pytest.raises(ConfigurationError):
        BandwidthAllocation(bandwidth_hz=np.array([-1.0]), total_budget_hz=1e6)


def test_allocation_feasibility_flag():
    allocation = BandwidthAllocation(bandwidth_hz=np.array([6e5, 6e5]), total_budget_hz=1e6)
    assert not allocation.is_feasible()
