"""Tests for device placement."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import Topology, uniform_disc_topology


def test_uniform_disc_respects_radius_and_count():
    topology = uniform_disc_topology(200, radius_km=0.25, rng=0)
    assert topology.num_devices == 200
    distances = topology.distances_km()
    assert np.all(distances <= 0.25 + 1e-12)
    assert np.all(distances >= 0.0)


def test_min_distance_keeps_devices_off_the_base_station():
    topology = uniform_disc_topology(500, radius_km=1.0, rng=1, min_distance_km=0.05)
    assert np.all(topology.distances_km() >= 0.05 - 1e-12)


def test_same_seed_same_drop():
    a = uniform_disc_topology(30, rng=7)
    b = uniform_disc_topology(30, rng=7)
    assert np.allclose(a.positions_km, b.positions_km)


def test_different_seed_different_drop():
    a = uniform_disc_topology(30, rng=7)
    b = uniform_disc_topology(30, rng=8)
    assert not np.allclose(a.positions_km, b.positions_km)


def test_radial_distribution_is_area_uniform():
    # Under uniform area density, the median distance is radius / sqrt(2).
    topology = uniform_disc_topology(20_000, radius_km=1.0, rng=3, min_distance_km=0.0)
    median = float(np.median(topology.distances_km()))
    assert median == pytest.approx(1.0 / np.sqrt(2.0), rel=0.03)


def test_subset_preserves_positions():
    topology = uniform_disc_topology(10, rng=0)
    subset = topology.subset(np.array([1, 3, 5]))
    assert subset.num_devices == 3
    assert np.allclose(subset.positions_km[0], topology.positions_km[1])


def test_invalid_arguments_rejected():
    with pytest.raises(ConfigurationError):
        uniform_disc_topology(0)
    with pytest.raises(ConfigurationError):
        uniform_disc_topology(5, radius_km=-1.0)
    with pytest.raises(ConfigurationError):
        uniform_disc_topology(5, radius_km=0.1, min_distance_km=0.2)
    with pytest.raises(ConfigurationError):
        Topology(positions_km=np.zeros((3, 3)))
