"""Tests for device placement."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless import Topology, uniform_disc_topology


def test_uniform_disc_respects_radius_and_count():
    topology = uniform_disc_topology(200, radius_km=0.25, rng=0)
    assert topology.num_devices == 200
    distances = topology.distances_km()
    assert np.all(distances <= 0.25 + 1e-12)
    assert np.all(distances >= 0.0)


def test_min_distance_keeps_devices_off_the_base_station():
    topology = uniform_disc_topology(500, radius_km=1.0, rng=1, min_distance_km=0.05)
    assert np.all(topology.distances_km() >= 0.05 - 1e-12)


def test_same_seed_same_drop():
    a = uniform_disc_topology(30, rng=7)
    b = uniform_disc_topology(30, rng=7)
    assert np.allclose(a.positions_km, b.positions_km)


def test_different_seed_different_drop():
    a = uniform_disc_topology(30, rng=7)
    b = uniform_disc_topology(30, rng=8)
    assert not np.allclose(a.positions_km, b.positions_km)


def test_radial_distribution_is_area_uniform():
    # Under uniform area density, the median distance is radius / sqrt(2).
    topology = uniform_disc_topology(20_000, radius_km=1.0, rng=3, min_distance_km=0.0)
    median = float(np.median(topology.distances_km()))
    assert median == pytest.approx(1.0 / np.sqrt(2.0), rel=0.03)


def test_subset_preserves_positions():
    topology = uniform_disc_topology(10, rng=0)
    subset = topology.subset(np.array([1, 3, 5]))
    assert subset.num_devices == 3
    assert np.allclose(subset.positions_km[0], topology.positions_km[1])


def test_invalid_arguments_rejected():
    with pytest.raises(ConfigurationError):
        uniform_disc_topology(0)
    with pytest.raises(ConfigurationError):
        uniform_disc_topology(5, radius_km=-1.0)
    with pytest.raises(ConfigurationError):
        uniform_disc_topology(5, radius_km=0.1, min_distance_km=0.2)
    with pytest.raises(ConfigurationError):
        Topology(positions_km=np.zeros((3, 3)))


# -- non-paper topologies ----------------------------------------------------

def test_cell_edge_ring_confines_devices_to_the_annulus():
    from repro.wireless import cell_edge_ring_topology

    topology = cell_edge_ring_topology(300, radius_km=1.0, inner_fraction=0.8, rng=0)
    distances = topology.distances_km()
    assert topology.num_devices == 300
    assert np.all(distances >= 0.8 - 1e-12)
    assert np.all(distances <= 1.0 + 1e-12)


def test_cell_edge_ring_validates_inner_fraction():
    from repro.wireless import cell_edge_ring_topology

    with pytest.raises(ConfigurationError):
        cell_edge_ring_topology(10, inner_fraction=1.0)
    with pytest.raises(ConfigurationError):
        cell_edge_ring_topology(10, inner_fraction=0.0)


def test_clustered_hotspot_stays_in_the_disc_and_is_deterministic():
    from repro.wireless import clustered_hotspot_topology

    a = clustered_hotspot_topology(100, radius_km=0.5, num_clusters=3, rng=4)
    b = clustered_hotspot_topology(100, radius_km=0.5, num_clusters=3, rng=4)
    assert a.num_devices == 100
    assert np.allclose(a.positions_km, b.positions_km)
    distances = a.distances_km()
    assert np.all(distances <= 0.5 + 1e-12)
    assert np.all(distances >= 0.005 - 1e-12)


def test_clustered_hotspot_is_more_clustered_than_uniform():
    from repro.wireless import clustered_hotspot_topology

    clustered = clustered_hotspot_topology(
        400, radius_km=1.0, num_clusters=2, cluster_std_fraction=0.02, rng=0
    )
    uniform = uniform_disc_topology(400, radius_km=1.0, rng=0)
    # With two tight clusters the spread of pairwise positions collapses.
    assert np.std(clustered.positions_km) < np.std(uniform.positions_km)


def test_indoor_grid_fits_the_extent():
    from repro.wireless import indoor_grid_topology

    topology = indoor_grid_topology(10, extent_km=0.05, rng=2)
    assert topology.num_devices == 10
    assert np.all(np.abs(topology.positions_km) <= 0.025 + 1e-12)
    # Grid cells are distinct: no two devices share a position.
    assert len({tuple(p) for p in np.round(topology.positions_km, 9).tolist()}) == 10


def test_indoor_grid_validates_parameters():
    from repro.wireless import indoor_grid_topology

    with pytest.raises(ConfigurationError):
        indoor_grid_topology(0)
    with pytest.raises(ConfigurationError):
        indoor_grid_topology(4, extent_km=-1.0)
    with pytest.raises(ConfigurationError):
        indoor_grid_topology(4, jitter_fraction=0.5)
