"""Repo-internal developer tooling (not part of the installed package)."""
