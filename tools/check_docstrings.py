#!/usr/bin/env python
"""Docstring-coverage gate: fail when modules under src/repro lack docstrings.

A tiny stand-in for ``interrogate --fail-under`` that needs nothing beyond
the standard library (the CI image and the local toolchain both have it by
definition).  It walks every ``*.py`` file under the given root, parses it
with :mod:`ast`, and checks for a module-level docstring; coverage below
the threshold (default 100%) exits non-zero listing the offenders.

Usage::

    python tools/check_docstrings.py                 # src/repro, 100%
    python tools/check_docstrings.py --fail-under 90
    python tools/check_docstrings.py --root src/repro/fl
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

__all__ = ["module_docstring_report", "main"]


def module_docstring_report(root: Path) -> tuple[list[Path], list[Path]]:
    """Split the modules under ``root`` into (documented, undocumented)."""
    documented: list[Path] = []
    undocumented: list[Path] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree):
            documented.append(path)
        else:
            undocumented.append(path)
    return documented, undocumented


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default="src/repro",
        help="directory tree to scan (default: src/repro)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=100.0,
        metavar="PCT",
        help="minimum module-docstring coverage percentage (default: 100)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    documented, undocumented = module_docstring_report(root)
    total = len(documented) + len(undocumented)
    if total == 0:
        print(f"error: no python modules found under {root}", file=sys.stderr)
        return 2
    coverage = 100.0 * len(documented) / total
    print(
        f"module docstrings: {len(documented)}/{total} ({coverage:.1f}%), "
        f"threshold {args.fail_under:.1f}%"
    )
    if coverage < args.fail_under:
        for path in undocumented:
            print(f"missing module docstring: {path}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
