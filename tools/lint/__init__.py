"""`repro-lint`: project-specific static analysis for the reproduction.

The reproduction's headline guarantees — bit-identical scalar/vector,
warm/cold and serial/parallel trajectories — rest on hand-maintained
conventions (purpose-tagged seed streams, ``ConvergenceError`` on
iteration-budget exhaustion, "every semantic config field enters the
cache key").  This package turns those conventions into AST-level lint
rules so a missed convention fails a CI job instead of silently
corrupting results three PRs later.

Entry points::

    python -m tools.lint [paths...]     # from a source checkout
    repro lint [paths...]               # via the installed CLI

Public API: :func:`tools.lint.engine.lint_paths` returns the findings for
a set of files/directories; :mod:`tools.lint.registry` holds the rule
registry.  Rules live in :mod:`tools.lint.rules`, one module per rule.

Suppressions: append ``# repro-lint: disable=RL001`` (comma-separate for
several rules) to the offending line, ideally with a short reason after
an ``--``.  Suppressions are line-scoped on purpose — there is no
file-level or block-level escape hatch, so every deliberate exception
stays visible at the exact statement it excuses.
"""

from __future__ import annotations

from .engine import PARSE_ERROR_ID, Finding, LintError, lint_paths, main
from .registry import Rule, all_rules, get_rule, register

__all__ = [
    "Finding",
    "LintError",
    "PARSE_ERROR_ID",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "main",
    "register",
]
