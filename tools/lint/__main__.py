"""``python -m tools.lint`` entry point."""

from __future__ import annotations

import sys

from .engine import main

sys.exit(main())
