"""Small AST utilities shared by the repro-lint rules.

Nothing here knows about the project's conventions — these are generic
helpers for resolving dotted names through import aliases, walking
statement blocks with sibling context, and spotting node kinds the rules
care about.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "import_aliases",
    "resolve_call_target",
    "iter_blocks",
    "contains_raise",
    "names_in",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified dotted path, from the module's imports.

    Covers ``import numpy as np`` (``np -> numpy``), ``from numpy import
    random as nr`` (``nr -> numpy.random``) and ``from numpy.random import
    default_rng`` (``default_rng -> numpy.random.default_rng``).  Relative
    imports are recorded with a leading ``.`` so callers can still match on
    the tail.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def resolve_call_target(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """The call target's fully qualified dotted path, aliases expanded."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


def iter_blocks(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every statement list in the tree (module/function/if/loop bodies...)."""
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(node, "handlers", []) or []:
            if handler.body:
                yield handler.body


def contains_raise(nodes: ast.AST | list[ast.stmt]) -> bool:
    """Whether a ``raise`` statement appears anywhere under ``nodes``.

    Nested function/class definitions are not descended into — a raise in
    an inner ``def`` does not handle the enclosing loop's exhaustion.
    """
    stack: list[ast.AST] = list(nodes) if isinstance(nodes, list) else [nodes]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def names_in(node: ast.AST) -> set[str]:
    """All bare names plus ALL_CAPS attribute tails referenced under a node.

    Attribute tails are only reported when they look like module-level
    constants (``mod.MAX_ITERATIONS``); lowercase attributes like
    ``config.max_iterations`` are deliberately excluded — see RL002's
    docstring for why.
    """
    found: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute) and child.attr.isupper():
            found.add(child.attr)
    return found
