"""The repro-lint engine: file walking, parsing, dispatch, output.

The engine is deliberately small: it finds ``*.py`` files, parses each one
once into an :class:`ast.Module`, records line-scoped suppressions, hands
every parsed module to every in-scope rule (then the whole
:class:`Project` to the cross-module rules), filters suppressed findings
and renders the rest as text or JSON.  All project knowledge lives in the
rules under :mod:`tools.lint.rules`.

Paths are resolved relative to a *root* (default: the current working
directory) because rule scoping is path-based — ``src/repro/perf`` is the
only tree allowed to touch the wall clock, for example.  Run the linter
from the repository root, or pass ``--root``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .registry import Rule, all_rules

__all__ = [
    "Finding",
    "LintError",
    "ParsedModule",
    "Project",
    "PARSE_ERROR_ID",
    "lint_paths",
    "main",
]

#: Pseudo rule id for files the engine could not parse.  Not suppressible:
#: a syntax error hides every real finding in the file.
PARSE_ERROR_ID = "RL000"

_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


class LintError(Exception):
    """A usage error (bad path, unknown rule id) — exit code 2."""


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The canonical one-line text form (``path:line:col: RLnnn msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line number -> rule ids disabled on that line.
    suppressions: dict[int, frozenset[str]]

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` (1-based line, 0-based column)."""
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass(frozen=True)
class Project:
    """Every module of one lint run, for cross-module rules."""

    root: Path
    modules: tuple[ParsedModule, ...]

    def in_scope(self, rule: Rule) -> tuple[ParsedModule, ...]:
        """The run's modules that fall inside ``rule``'s path scope."""
        return tuple(m for m in self.modules if rule.applies_to(m.relpath))


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line numbers to the rule ids disabled there.

    The marker is ``# repro-lint: disable=RL001`` (comma-separate several
    ids); anything after the id list — e.g. an ``-- explanation`` — is
    ignored, so suppressions can and should carry a reason.
    """
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                table[lineno] = ids
    return table


def _collect_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while preserving order (overlapping path arguments).
    seen: set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_modules(
    files: Iterable[Path], root: Path
) -> tuple[list[ParsedModule], list[Finding]]:
    modules: list[ParsedModule] = []
    errors: list[Finding] = []
    for path in files:
        relpath = _relpath(path, root)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule=PARSE_ERROR_ID,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"could not parse file: {exc.msg}",
                )
            )
            continue
        modules.append(
            ParsedModule(
                path=path,
                relpath=relpath,
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
        )
    return modules, errors


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> tuple[Rule, ...]:
    rules = all_rules()
    known = {rule.id for rule in rules}
    for rule_id in list(select or []) + list(ignore or []):
        if rule_id not in known:
            raise LintError(f"unknown rule id {rule_id!r}; known: {', '.join(sorted(known))}")
    if select:
        rules = tuple(rule for rule in rules if rule.id in set(select))
    if ignore:
        rules = tuple(rule for rule in rules if rule.id not in set(ignore))
    return rules


def _suppressed(finding: Finding, modules_by_relpath: dict[str, ParsedModule]) -> bool:
    if finding.rule == PARSE_ERROR_ID:
        return False
    module = modules_by_relpath.get(finding.path)
    if module is None:
        return False
    disabled = module.suppressions.get(finding.line, frozenset())
    return finding.rule in disabled


def lint_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint files/directories and return the unsuppressed findings, sorted.

    ``root`` anchors the relative paths that rule scoping matches against
    (default: the current working directory).  ``select`` restricts the run
    to the given rule ids; ``ignore`` drops rules from it.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules = _select_rules(select, ignore)
    files = _collect_files([Path(p) for p in paths])
    modules, findings = _parse_modules(files, root_path)
    project = Project(root=root_path, modules=tuple(modules))
    modules_by_relpath = {module.relpath: module for module in modules}

    for rule in rules:
        for module in project.in_scope(rule):
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))

    findings = [f for f in findings if not _suppressed(f, modules_by_relpath)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _render_text(findings: list[Finding], *, stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    for finding in findings:
        print(finding.render(), file=stream)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"repro-lint: {len(findings)} {noun}", file=stream)


def _render_json(findings: list[Finding], *, stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    print(json.dumps([asdict(f) for f in findings], indent=2), file=stream)


def _list_rules(stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    for rule in all_rules():
        print(f"{rule.id}  {rule.name}: {rule.summary}", file=stream)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns 0 (clean), 1 (findings) or 2 (usage error)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based static analysis enforcing the reproduction's "
        "determinism, convergence and cache-key conventions.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root for path scoping (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    split = lambda csv: [p.strip() for p in csv.split(",") if p.strip()] if csv else None
    try:
        findings = lint_paths(
            args.paths,
            root=args.root,
            select=split(args.select),
            ignore=split(args.ignore),
        )
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        _render_json(findings)
    else:
        _render_text(findings)
    return 1 if findings else 0
