"""RL001 failing fixture: unseeded and legacy RNG use."""

import random

import numpy as np


def draw(n):
    rng = np.random.default_rng()
    np.random.seed(0)
    return rng.normal(size=n) + np.random.rand(n) + random.random()
