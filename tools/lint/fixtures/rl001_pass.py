"""RL001 passing fixture: purpose-seeded Generators only."""

import numpy as np
from numpy.random import PCG64, Generator

#: Purpose tag separating this module's stream from the trial seed.
_STREAM = 7


def draw(seed, n):
    rng = np.random.default_rng((seed, _STREAM))
    explicit = Generator(PCG64(seed))
    return rng.normal(size=n) + explicit.normal(size=n)


def thread_through(rng, n):
    child = np.random.default_rng(rng)
    return child.normal(size=n)
