"""RL002 failing fixture: cap-bounded loops that fall through silently."""

#: Module-level cap constant, to exercise the ALL_CAPS spelling.
MAX_EXPANSIONS = 60


def bisect_silent(f, lo, hi, tol, max_iter):
    """The PR-3 smoking gun: returns the midpoint of an unconverged bracket."""
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if f(mid) > 0.0:
            hi = mid
        else:
            lo = mid
        if hi - lo <= tol:
            break
    return 0.5 * (lo + hi)


def expand_silent(f, hi):
    """Accepts an unbracketed endpoint when the cap runs out."""
    n = 0
    while f(hi) < 0.0 and n < MAX_EXPANSIONS:
        hi *= 2.0
        n += 1
    return hi
