"""RL002 passing fixture: exhaustion paths raise ConvergenceError."""

from repro.exceptions import ConvergenceError

MAX_EXPANSIONS = 60


def bisect_raising(f, lo, hi, tol, max_iter):
    """The for/else raise idiom used throughout repro.solvers."""
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if f(mid) > 0.0:
            hi = mid
        else:
            lo = mid
        if hi - lo <= tol:
            break
    else:
        raise ConvergenceError("bracket is still wider than tol")
    return 0.5 * (lo + hi)


def expand_flagging(f, hi):
    """The converged-flag pattern: the raise sits one block after the loop."""
    converged = False
    n = 0
    while n < MAX_EXPANSIONS:
        hi *= 2.0
        n += 1
        if f(hi) >= 0.0:
            converged = True
            break
    if not converged:
        raise ConvergenceError("no sign change within the expansion cap")
    return hi


def uncapped_scan(items):
    """Not cap-bounded at all: plain data iteration stays out of scope."""
    total = 0.0
    for item in items:
        total += item
    return total
