"""RL003 failing fixture: a semantic field missing from the cache key.

``extra_knob`` never appears in ``payload()``, ``RoundLoopConfig`` has no
``asdict``-based ``_jsonify`` carrier in this (single-file) run, and
``BatchConfig.lane_tol`` (not allowlisted, unlike ``size``) is named in no
builder.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SweepTask:
    key: str
    seed: int
    tolerance: float
    extra_knob: float

    def payload(self):
        return {"seed": self.seed, "tolerance": self.tolerance}


@dataclass(frozen=True)
class RoundLoopConfig:
    rounds: int


@dataclass(frozen=True)
class BatchConfig:
    size: int
    lane_tol: float

    def payload(self):
        return {"size_is_fine": self.size}
