"""RL003 passing fixture: every field keyed or allowlisted, carrier intact.

``key`` rides on ``SweepTask``'s allowlist; every other field is named in
``payload()``'s dict literal; ``RoundLoopConfig`` is covered by the
``dataclasses.asdict`` branch of ``_jsonify``.  The field-removal test in
``tests/test_lint.py`` deletes the ``extra_knob`` payload line from this
file and asserts the rule catches it.
"""

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class SweepTask:
    key: str
    seed: int
    tolerance: float
    extra_knob: float

    def payload(self):
        return {
            "seed": self.seed,
            "tolerance": self.tolerance,
            "extra_knob": self.extra_knob,
        }


@dataclass(frozen=True)
class RoundLoopConfig:
    rounds: int


@dataclass(frozen=True)
class BatchConfig:
    # ``size`` is allowlisted (scheduling-only, parity-tested); ``lane_tol``
    # is semantic and must be named in a builder — here its own payload().
    size: int
    lane_tol: float

    def payload(self):
        return {"lane_tol": self.lane_tol}


def _jsonify(value):
    if dataclasses.is_dataclass(value):
        return dataclasses.asdict(value)
    return value
