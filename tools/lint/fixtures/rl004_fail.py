"""RL004 failing fixture: clock access outside repro.perf."""

import datetime
import time
from time import perf_counter


def timed_solve(solve):
    started = time.monotonic()
    result = solve()
    stamp = datetime.datetime.now()
    return result, time.monotonic() - started, stamp
