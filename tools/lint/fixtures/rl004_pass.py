"""RL004 passing fixture: clock primitives are fine *inside* repro.perf.

The tests copy this file under ``src/repro/perf/`` (quiet) and under
``src/repro/solvers/`` (four findings) to pin the path scoping.
"""

from time import monotonic, perf_counter


def span(block):
    started = perf_counter()
    block()
    return monotonic(), perf_counter() - started
