"""RL005 failing fixture: broad handlers and swallowed solver errors."""

from repro.exceptions import ConvergenceError


def run_task(task):
    try:
        return task()
    except:  # noqa: E722 -- the bare except IS the fixture
        return None


def run_quietly(solve):
    try:
        return solve()
    except Exception:
        return None


def ignore_failures(solve, fallback):
    try:
        return solve()
    except ConvergenceError:
        pass
    return fallback
