"""RL005 passing fixture: narrow handlers whose bodies do real work."""

from repro.exceptions import ConvergenceError, SolverError


def resolve(solve, numeric_fallback):
    try:
        return solve()
    except ConvergenceError:
        return numeric_fallback()


def annotate(solve):
    try:
        return solve()
    except SolverError as exc:
        raise SolverError(f"solve failed: {exc}") from exc


def parse_or_default(text, default):
    try:
        return float(text)
    except ValueError:
        return default
