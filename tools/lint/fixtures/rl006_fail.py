"""RL006 failing fixture: representation-dependent float equality."""


def on_grid(x):
    return x == 0.25


def ratio_matches(a, b, target):
    return a / b == target


def denormalised(x, scale):
    return float(x) != scale
