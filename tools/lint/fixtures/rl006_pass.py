"""RL006 passing fixture: sentinels, tolerances and quantized comparisons."""


def exact_root(f_lo):
    return f_lo == 0.0


def close(a, b, tol):
    return abs(a - b) <= tol


def quantized_match(a, b, step):
    return round(a / step) == round(b / step)
