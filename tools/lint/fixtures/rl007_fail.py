"""RL007 fail fixture: store addressing derived from semantic task content.

Three findings: ``entry_path`` takes the task itself and folders entries
by its scenario (``task`` + ``"scenario"``), and ``shard_for_digest``
lets the measured metrics steer shard assignment (``metrics``).
"""


class BadStore:
    def __init__(self, root):
        self.root = root

    def entry_path(self, digest, task):
        # Folders entries by scenario family: two stores holding the same
        # digests now disagree on layout.
        return self.root / str(task["scenario"]) / f"{digest}.json"


def shard_for_digest(digest, count, metrics=None):
    if metrics is not None:
        return int(metrics["energy_j"]) % count
    return int(digest[:16], 16) % count
