"""RL007 pass fixture: addressing is a pure function of the digest."""


class GoodStore:
    def __init__(self, root):
        self.root = root

    def entry_path(self, digest):
        return self.root / "sweeps" / digest[:2] / f"{digest}.json"

    def _segment_path(self, name):
        return self.root / "columnar" / "segments" / name


def shard_for_digest(digest, count):
    return int(digest[:16], 16) % count
