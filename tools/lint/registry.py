"""Rule registry: the pluggable core of the repro-lint framework.

A rule is a class with an ``id`` (``RLnnn``), a one-line ``summary``, a
path scope (:meth:`Rule.applies_to`) and one or both of

* :meth:`Rule.check_module` — per-file findings from one parsed module;
* :meth:`Rule.check_project` — cross-module findings from the whole run
  (used by RL003, whose invariant spans a dataclass in one file and a
  cache-key builder in another).

Rules self-register at import time through the :func:`register` decorator
(importing :mod:`tools.lint.rules` pulls every built-in in), mirroring the
solver-kind and scenario-family registries in :mod:`repro`: the engine
never needs to know which rules exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import Finding, ParsedModule, Project

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class for lint rules; subclasses override the hooks they need."""

    #: Unique rule identifier (``RL001`` ...), used in output and suppressions.
    id: str = ""
    #: Short human-readable name (kebab-case).
    name: str = ""
    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether ``relpath`` (posix, relative to the lint root) is in scope.

        The default scope is the library itself: tests, benchmarks and the
        tools tree are free to poke at wall clocks and broad excepts.
        """
        return relpath.startswith("src/repro/")

    def check_module(self, module: "ParsedModule") -> Iterable["Finding"]:
        """Per-file hook: yield findings for one parsed module."""
        return ()

    def check_project(self, project: "Project") -> Iterable["Finding"]:
        """Whole-run hook: yield findings that need cross-module context."""
        return ()


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by its ``id``) to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    _load_builtins()
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id (raises ``KeyError`` for unknown ids)."""
    _load_builtins()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}") from None


def _load_builtins() -> None:
    """Import the built-in rule modules (idempotent, registers on import)."""
    from . import rules  # noqa: F401  (import for side effects)
