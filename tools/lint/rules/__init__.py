"""Built-in repro-lint rules, one module per rule (imported to register)."""

from __future__ import annotations

from . import (  # noqa: F401  (import for side effects: rule registration)
    rl001_seed_discipline,
    rl002_silent_convergence,
    rl003_cache_key,
    rl004_wall_clock,
    rl005_exception_hygiene,
    rl006_float_equality,
    rl007_store_addressing,
)
