"""RL001 seed-discipline: every RNG draw must be purpose-seeded.

The parity guarantees (serial vs ``--jobs``, warm vs cold, scalar vs
vector) hold because every random draw in ``src/repro`` flows from an
explicit, purpose-tagged seed — the trial seed inside a
:class:`~repro.experiments.runner.SweepTask`, or a ``(seed, stream)``
tuple like the round-loop's ``_DATASET_STREAM``.  Three things break
that:

* ``np.random.default_rng()`` **with no argument** — OS-entropy seeded,
  different on every call;
* the **legacy global-state API** (``np.random.rand``,
  ``np.random.seed`` & friends) — hidden shared state that process pools
  and import order can reorder;
* the stdlib :mod:`random` module — same problem, plus a different
  bit-stream per platform history.

``default_rng(seed)`` / ``default_rng(rng)`` pass-throughs are fine: the
rule checks that *an* argument is present, not where it came from —
provenance is enforced by the call-site conventions (sweep trial seeds,
tagged streams) that code review still owns.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..asthelpers import import_aliases, resolve_call_target
from ..engine import Finding, ParsedModule
from ..registry import Rule, register

#: numpy.random attributes that are allowed (seeded-Generator machinery
#: and type annotations); everything else on numpy.random is the legacy
#: global-state API.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}


@register
class SeedDiscipline(Rule):
    """Flag unseeded ``default_rng()``, legacy ``np.random.*`` and stdlib ``random``."""

    id = "RL001"
    name = "seed-discipline"
    summary = (
        "RNGs must be purpose-seeded: no default_rng() without a seed, no "
        "legacy np.random.* global state, no stdlib random in src/repro"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        yield from self._check_imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target is None:
                continue
            if target == "numpy.random.default_rng" and not node.args and not node.keywords:
                yield module.finding(
                    self,
                    node,
                    "default_rng() without a seed is OS-entropy seeded and "
                    "breaks run-to-run determinism; pass a purpose-tagged "
                    "seed (or thread an existing Generator through)",
                )
            elif target.startswith("numpy.random."):
                attr = target.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_ALLOWED:
                    yield module.finding(
                        self,
                        node,
                        f"legacy global-state RNG numpy.random.{attr}(); use a "
                        "seeded np.random.default_rng(...) Generator instead",
                    )

    def _check_imports(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name == "random" or name.startswith("random."):
                    yield module.finding(
                        self,
                        node,
                        "stdlib random has hidden global state and a "
                        "platform-history-dependent stream; use a seeded "
                        "np.random.default_rng(...) Generator",
                    )
                    break
