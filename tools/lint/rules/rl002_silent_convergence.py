"""RL002 silent-convergence: exhausted iteration caps must raise.

PR 3 fixed two real bugs of the same shape — ``bisect_scalar`` silently
returning the midpoint of a still-too-wide bracket, and the SP2 budget
expansion silently accepting an infeasible point — and established the
convention: a loop bounded by an iteration cap either meets its tolerance
or raises :class:`~repro.exceptions.ConvergenceError`; it never falls
through to a fallback value.  This rule makes the convention static.

A loop is *cap-bounded* when its ``range(...)`` bound (or ``while``
condition) references a name matching the iteration-cap pattern: a bare
``max_iter`` / ``max_iterations`` / ``max_expansions`` /
``max_contractions`` / ``max_backtracks`` local or parameter, or an
ALL_CAPS constant containing ``MAX`` plus one of those stems (e.g.
``MU_SEARCH_MAX_ITERATIONS``).  Lowercase *attribute* accesses such as
``config.max_iterations`` are deliberately **out of scope**: the outer
algorithm loops (Algorithm 1/2) report exhaustion through a ``converged``
flag in their result object, which is the paper's semantics — the raise
convention applies to the solver primitives underneath them.

A cap-bounded loop passes when its exhaustion path can raise: the loop's
``else:`` clause raises, or a ``raise`` statement appears *after* the
loop inside the innermost enclosing function (covering the pervasive
``for ...: ... / raise ConvergenceError(...)`` idiom, the
``while cond and n < CAP: ... / if cond: raise`` shape, and the
``converged``-flag pattern where the raise sits one block up).  This is
a deliberate over-approximation — an unrelated later raise also passes —
because the smoking-gun failure mode is unambiguous the other way
around: a solver that simply returns a fallback value has *no* raise
anywhere after its loop, and that is what gets flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..asthelpers import contains_raise, iter_blocks, names_in
from ..engine import Finding, ParsedModule
from ..registry import Rule, register

_CAP_NAME = re.compile(
    r"(?i)(^|_)max_?(iter(ations?)?|expansions?|contractions?|backtracks?)($|_)"
)


def _is_cap_bounded(loop: ast.stmt) -> bool:
    if isinstance(loop, ast.For):
        iterator = loop.iter
        if not (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
        ):
            return False
        referenced = set()
        for arg in iterator.args:
            referenced |= names_in(arg)
    elif isinstance(loop, ast.While):
        referenced = names_in(loop.test)
    else:
        return False
    return any(_CAP_NAME.search(name) for name in referenced)


@register
class SilentConvergence(Rule):
    """Flag cap-bounded loops whose exhaustion path does not raise."""

    id = "RL002"
    name = "silent-convergence"
    summary = (
        "loops bounded by an iteration-cap name must raise ConvergenceError "
        "on exhaustion instead of falling through to a fallback value"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        raise_lines = sorted(
            node.lineno for node in ast.walk(module.tree) if isinstance(node, ast.Raise)
        )
        module_end = max(
            (getattr(node, "end_lineno", 0) or 0 for node in module.tree.body), default=0
        )
        for block in iter_blocks(module.tree):
            for stmt in block:
                if not isinstance(stmt, (ast.For, ast.While)):
                    continue
                if not _is_cap_bounded(stmt):
                    continue
                if stmt.orelse and contains_raise(stmt.orelse):
                    continue
                scope_end = _enclosing_scope_end(stmt, functions, module_end)
                loop_end = stmt.end_lineno or stmt.lineno
                if any(loop_end < line <= scope_end for line in raise_lines):
                    continue
                yield module.finding(
                    self,
                    stmt,
                    "iteration-cap-bounded loop has no raising exhaustion "
                    "path; raise ConvergenceError after the loop (or in its "
                    "else clause) instead of returning a fallback value",
                )


def _enclosing_scope_end(
    loop: ast.stmt, functions: list, module_end: int
) -> int:
    """Last line of the innermost function containing ``loop`` (or module)."""
    best_span = None
    best_end = module_end
    for fn in functions:
        start, end = fn.lineno, fn.end_lineno or fn.lineno
        if start <= loop.lineno <= end:
            span = end - start
            if best_span is None or span < best_span:
                best_span, best_end = span, end
    return best_end
