"""RL003 cache-key completeness: every semantic config field enters the key.

The sweep cache (:mod:`repro.experiments.runner`) is keyed by a SHA-256
over :meth:`SweepTask.payload`.  The standing convention since PR 1 is:
*every config field that affects a solve must enter the payload, or
``CACHE_VERSION`` must be bumped* — otherwise changing the field serves
stale results.  This rule checks the convention statically, cross-module,
for the watched configuration dataclasses.

Two carrier modes, matching how configs actually reach the payload:

* **explicit** — the class's fields are spelled out by a key-builder
  function (``SweepTask.payload``'s dict literal, ``SweepConfig.
  scenario_params``'s flat mapping plus the task builders that thread
  ``allocator`` into ``solver_params``).  Each dataclass field must be
  *mentioned* in one of the builders (as a dict-literal/string key, an
  attribute access, or a keyword argument) or sit on the spec's
  ``allow`` list of non-semantic fields.
* **asdict** — the config rides into the payload whole, through the
  ``dataclasses.asdict`` branch of ``runner._jsonify`` (true for
  ``AllocatorConfig``/``SumOfRatiosConfig`` inside ``solver_params`` and
  for ``RoundLoopConfig`` under ``solver_params["roundloop"]``), so new
  fields are covered automatically.  The rule then verifies the carrier
  is intact: the class is still a ``@dataclass`` and a ``_jsonify``
  function with an ``asdict(...)`` call exists in the linted tree.

Renaming a watched class or builder without updating the spec table below
is itself reported — a silently-detached invariant is the failure mode
this rule exists to prevent.  RL003 needs the whole tree in one run
(``repro lint src``): the class definition and its builders live in
different modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..asthelpers import dotted_name
from ..engine import Finding, ParsedModule, Project
from ..registry import Rule, register


@dataclass(frozen=True)
class KeySpec:
    """How one watched config class reaches the cache key."""

    #: ``"explicit"`` (fields named by builder functions) or ``"asdict"``.
    mode: str
    #: Names of the key-builder functions/methods (explicit mode): the
    #: class's own methods or module-level functions anywhere in the run.
    builders: tuple[str, ...] = ()
    #: Fields that deliberately stay out of the key, with the reason kept
    #: here so the allowlist is reviewable in one place.
    allow: frozenset[str] = frozenset()


#: class name -> how its fields must reach SweepTask.payload().
WATCHED: dict[str, KeySpec] = {
    # key/warm_key/warm_order are scheduling + aggregation labels: tasks
    # sharing a payload are the same computation, and warm results must
    # agree with cold ones (parity-tested), so they share cache entries.
    "SweepTask": KeySpec(
        mode="explicit",
        builders=("payload",),
        allow=frozenset({"key", "warm_key", "warm_order"}),
    ),
    # num_trials/base_seed expand into the per-task scenario "seed" (each
    # trial is its own task); every other field must appear in the flat
    # scenario mapping or be threaded into solver_params by the builders.
    "SweepConfig": KeySpec(
        mode="explicit",
        builders=("scenario_params", "proposed_tasks", "baseline_tasks"),
        allow=frozenset({"num_trials", "base_seed"}),
    ),
    "AllocatorConfig": KeySpec(mode="asdict"),
    "SumOfRatiosConfig": KeySpec(mode="asdict"),
    "RoundLoopConfig": KeySpec(mode="asdict"),
    # size is a scheduling knob like warm_key/warm_order: a batched lane's
    # trajectory is bit-identical to the per-drop solve (parity-tested), so
    # batch size deliberately stays out of the payload and cache keys are
    # shared with serial runs.  Any *new* BatchConfig field must either be
    # threaded into SweepTask.payload() or join this allowlist consciously.
    "BatchConfig": KeySpec(
        mode="explicit",
        builders=("payload",),
        allow=frozenset({"size"}),
    ),
}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> Iterator[ast.AnnAssign]:
    """The class's dataclass fields (annotated, non-ClassVar, public)."""
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        yield stmt


def _mentions(fn: ast.AST) -> set[str]:
    """Every way a builder can 'name' a field: attrs, string keys, kwargs."""
    mentioned: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            mentioned.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentioned.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg:
            mentioned.add(node.arg)
    return mentioned


def _has_asdict_jsonify(modules: Iterable[ParsedModule]) -> bool:
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "_jsonify":
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    name = dotted_name(inner.func)
                    if name in ("asdict", "dataclasses.asdict"):
                        return True
    return False


@register
class CacheKeyCompleteness(Rule):
    """Flag watched-config fields that never reach the cache key."""

    id = "RL003"
    name = "cache-key-completeness"
    summary = (
        "fields of the watched config dataclasses must enter "
        "SweepTask.payload() (directly or via the asdict carrier) or be "
        "allowlisted as non-semantic"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        modules = project.in_scope(self)
        classes: list[tuple[ParsedModule, ast.ClassDef, KeySpec]] = []
        functions: dict[str, list[ast.AST]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    if node.name in WATCHED:
                        classes.append((module, node, WATCHED[node.name]))
                    for stmt in node.body:
                        if isinstance(stmt, ast.FunctionDef):
                            functions.setdefault(stmt.name, []).append(stmt)
                elif isinstance(node, ast.FunctionDef):
                    functions.setdefault(node.name, []).append(node)

        asdict_ok = _has_asdict_jsonify(modules)
        for module, node, spec in classes:
            if not _is_dataclass(node):
                yield module.finding(
                    self,
                    node,
                    f"{node.name} is cache-key-watched but is no longer a "
                    "@dataclass; its fields cannot be canonicalised into the "
                    "payload (update tools/lint/rules/rl003_cache_key.py if "
                    "this is intentional, and bump CACHE_VERSION)",
                )
                continue
            if spec.mode == "asdict":
                if not asdict_ok:
                    yield module.finding(
                        self,
                        node,
                        f"{node.name} is carried into the cache key whole via "
                        "the dataclasses.asdict branch of runner._jsonify, "
                        "but no such function exists in this lint run — run "
                        "repro lint on the whole src tree, or re-point the "
                        "spec in tools/lint/rules/rl003_cache_key.py",
                    )
                continue
            builders = [fn for name in spec.builders for fn in functions.get(name, [])]
            if not builders:
                yield module.finding(
                    self,
                    node,
                    f"none of {node.name}'s cache-key builders "
                    f"({', '.join(spec.builders)}) were found in this lint "
                    "run — run repro lint on the whole src tree, or update "
                    "the spec in tools/lint/rules/rl003_cache_key.py after a "
                    "rename",
                )
                continue
            mentioned: set[str] = set()
            for fn in builders:
                mentioned |= _mentions(fn)
            for field_stmt in _dataclass_fields(node):
                field_name = field_stmt.target.id  # type: ignore[union-attr]
                if field_name in spec.allow or field_name in mentioned:
                    continue
                yield module.finding(
                    self,
                    field_stmt,
                    f"field {field_name!r} of {node.name} never enters the "
                    f"cache key (not referenced in "
                    f"{'/'.join(spec.builders)}); thread it into the payload "
                    "and bump CACHE_VERSION, or allowlist it as non-semantic "
                    "in tools/lint/rules/rl003_cache_key.py",
                )
