"""RL004 wall-clock-in-solver: only ``repro.perf`` reads the clock.

Wall-clock reads are the canonical nondeterminism leak: a solver that
times itself and branches on the result (adaptive tolerances, time-boxed
iteration, "fast enough, stop refining") produces machine-dependent
trajectories, which the parity gates can only catch after the fact.  The
convention is that all timing flows through :mod:`repro.perf.timers`
(``stage(...)`` spans and the ``wall_clock()`` reader) so clock access is
auditable in one module — and that module is the only place allowed to
import the primitives.

The rule flags, everywhere in ``src/repro`` except ``src/repro/perf``:

* calls resolving to the :mod:`time` module's clock readers
  (``time.time``, ``perf_counter``, ``monotonic``, ``process_time``,
  their ``_ns`` variants) and ``time.sleep``;
* ``from time import ...`` of those names (use before the alias map sees
  a call is already a leak);
* ``datetime.now`` / ``datetime.utcnow`` / ``datetime.today`` calls.

Pure-bookkeeping timing (cache I/O accounting, progress reporting) is
fine — route it through ``repro.perf.timers.wall_clock`` so the import
graph says so.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..asthelpers import import_aliases, resolve_call_target
from ..engine import Finding, ParsedModule
from ..registry import Rule, register

_TIME_FUNCTIONS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
    "sleep",
}

_DATETIME_TARGETS = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockInSolver(Rule):
    """Flag direct clock access outside ``repro.perf``."""

    id = "RL004"
    name = "wall-clock-in-solver"
    summary = (
        "no time.time()/perf_counter()/monotonic() (or datetime.now) "
        "outside repro.perf; route timing through repro.perf.timers"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and not relpath.startswith(
            "src/repro/perf/"
        )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module == "time":
                bad = [a.name for a in node.names if a.name in _TIME_FUNCTIONS]
                if bad:
                    yield module.finding(
                        self,
                        node,
                        f"importing {', '.join(bad)} from time outside "
                        "repro.perf; use repro.perf.timers "
                        "(stage spans / wall_clock) instead",
                    )
            elif isinstance(node, ast.Call):
                target = resolve_call_target(node, aliases)
                if target is None:
                    continue
                if (
                    target.startswith("time.")
                    and target.rsplit(".", 1)[1] in _TIME_FUNCTIONS
                ) or target in _DATETIME_TARGETS:
                    yield module.finding(
                        self,
                        node,
                        f"direct clock access {target}() outside repro.perf; "
                        "parity-sensitive code must not observe the wall "
                        "clock — use repro.perf.timers instead",
                    )
