"""RL005 exception hygiene: no naked excepts, no swallowed solver errors.

PR 3's headline bugfix was a solver that *couldn't* fail loudly; this
rule guards the other half of that contract — call sites that catch
failures and drop them on the floor.  Two shapes are flagged in
``src/repro``:

* **broad handlers**: bare ``except:``, ``except Exception:`` and
  ``except BaseException:``.  The library has a precise hierarchy
  (:class:`~repro.exceptions.ReproError` and friends); catching
  everything also catches typos, ``KeyboardInterrupt`` leaks through
  ``BaseException``, and — worst — a :class:`ConvergenceError` that
  should have invalidated a result.  The deliberate uses (the sweep
  runner's per-task crash isolation, pool-failure fallbacks) carry
  line-scoped suppressions with their reasons.
* **swallowed solver errors**: a handler naming ``SolverError`` /
  ``ConvergenceError`` / ``InfeasibleProblemError`` (alone or in a
  tuple) whose body is only ``pass``/``...`` — the error neither
  propagates, nor is transformed, nor reaches the outcome record.
  Fallback paths that *handle* the error (numeric re-solve, incumbent
  point) are untouched: their bodies do real work.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..asthelpers import dotted_name
from ..engine import Finding, ParsedModule
from ..registry import Rule, register

_BROAD = {"Exception", "BaseException"}
_SOLVER_ERRORS = {"SolverError", "ConvergenceError", "InfeasibleProblemError"}


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return set()
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names: set[str] = set()
    for node in nodes:
        name = dotted_name(node)
        if name:
            names.add(name.rsplit(".", 1)[-1])
    return names


def _is_swallowing(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register
class ExceptionHygiene(Rule):
    """Flag naked/broad excepts and pass-only solver-error handlers."""

    id = "RL005"
    name = "exception-hygiene"
    summary = (
        "no bare/broad except clauses in src/repro, and no pass-only "
        "handlers that swallow SolverError/ConvergenceError"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self,
                    node,
                    "bare except: catches everything including "
                    "KeyboardInterrupt; catch the narrowest repro.exceptions "
                    "type that can actually occur here",
                )
                continue
            caught = _caught_names(node)
            broad = caught & _BROAD
            if broad:
                yield module.finding(
                    self,
                    node,
                    f"broad except {'/'.join(sorted(broad))}: also catches "
                    "ConvergenceError and plain bugs; catch the narrowest "
                    "repro.exceptions type (suppress with a reason where "
                    "crash isolation is the point)",
                )
            if caught & _SOLVER_ERRORS and _is_swallowing(node):
                yield module.finding(
                    self,
                    node,
                    f"handler swallows {'/'.join(sorted(caught & _SOLVER_ERRORS))} "
                    "with a pass-only body; a convergence failure must "
                    "propagate, be transformed, or reach the outcome record",
                )
