"""RL006 float-equality: no representation-dependent ``==`` in solver code.

``x == 0.1`` is a statement about one binary representation, not a
mathematical value — refactoring ``x``'s arithmetic (or switching
backend) flips the comparison while every tolerance-based gate still
passes.  In the parity-sensitive trees (``src/repro/core``,
``src/repro/solvers``) this rule flags ``==`` / ``!=`` comparisons where
an operand is *float-valued by construction*:

* a non-zero float literal (``x == 0.1``);
* an arithmetic expression containing a float literal
  (``x == hi - 0.5`` — true division alone also counts);
* an explicit ``float(...)`` conversion.

Comparisons against the literal ``0.0`` alone are **allowed**: an exact
zero test is IEEE-well-defined and is the bracketing solvers' deliberate
sentinel idiom (``f_lo == 0.0`` = "endpoint is an exact root"), while
tolerating it costs nothing — rounding a nonzero residual to exactly
``0.0`` only short-circuits a branch whose tolerance check was about to
pass anyway.  Quantization helpers (functions whose name contains
``quant``) are exempt wholesale: comparing values *after* snapping them
to a shared grid is the one place float equality is the point.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ParsedModule
from ..registry import Rule, register


def _is_zero_float(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value == 0.0
    )


def _is_float_expression(node: ast.AST) -> bool:
    """Float-valued by construction (see module docstring); zeros exempt."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and node.value != 0.0
    if isinstance(node, ast.UnaryOp):
        return _is_float_expression(node.operand)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Constant)
                and isinstance(child.value, float)
            ):
                return True
    return False


@register
class FloatEquality(Rule):
    """Flag ``==``/``!=`` against float-valued expressions in solver code."""

    id = "RL006"
    name = "float-equality"
    summary = (
        "no ==/!= on float-valued expressions in repro.core/repro.solvers "
        "(exact-zero sentinels and quantization helpers exempt)"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("src/repro/core/", "src/repro/solvers/"))

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        exempt_spans: list[tuple[int, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and "quant" in node.name.lower():
                exempt_spans.append((node.lineno, node.end_lineno or node.lineno))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if any(lo <= node.lineno <= hi for lo, hi in exempt_spans):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_zero_float(operand) for operand in operands):
                continue
            if any(_is_float_expression(operand) for operand in operands):
                yield module.finding(
                    self,
                    node,
                    "==/!= on a float-valued expression is representation-"
                    "dependent; compare against a tolerance, or quantize "
                    "both sides first (exact-zero sentinel tests are exempt)",
                )
