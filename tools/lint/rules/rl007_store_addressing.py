"""RL007 store addressing: entry locations derive from the digest alone.

The result store (:mod:`repro.store`) addresses every entry by the SHA-256
``task_hash`` of its task payload: the JSON backend's ``entry_path`` fans
a digest out into ``sweeps/<digest[:2]>/<digest>.json``, the columnar
backend's ``_segment_path``/``_manifest_path``/``_log_path`` are
digest-independent fixed locations, and ``shard_for_digest`` assigns a
task to an execution shard from the digest prefix.  The standing
convention is: *where* an entry lives must be a pure function of the
digest (or a constant), never of the semantic task content — otherwise
two stores holding the same entries can disagree on layout, shard
partitions drift between runs, and ``repro store merge`` loses its
byte-identical-to-serial guarantee.

The rule checks the watched addressing functions statically: any
reference to semantic task material (the task payload, metrics, warm
state, scenario or solver parameters) inside one of them is a finding.
Renaming every watched function away without updating the spec below is
itself reported — a silently-detached invariant is the failure mode this
rule exists to prevent, exactly as for RL003's cache-key builders.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engine import Finding, ParsedModule, Project
from ..registry import Rule, register

#: The addressing primitives whose bodies must stay digest-pure.
WATCHED_FUNCTIONS = (
    "entry_path",
    "shard_for_digest",
    "_segment_path",
    "_manifest_path",
    "_log_path",
)

#: Names that mark semantic task content.  A watched function touching any
#: of these (as a parameter, variable, attribute or string key) is deriving
#: an entry's location from *what* the task computes instead of its digest.
FORBIDDEN = frozenset(
    {
        "task",
        "payload",
        "metrics",
        "state",
        "scenario",
        "solver_params",
        "config",
        "weights",
        "allocator",
    }
)


def _semantic_refs(fn: ast.FunctionDef) -> Iterator[tuple[str, ast.AST]]:
    """Forbidden names referenced anywhere in ``fn``, first occurrence each."""
    seen: dict[str, ast.AST] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.arg):
            name = node.arg
        elif isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        else:
            continue
        if name in FORBIDDEN and name not in seen:
            seen[name] = node
    for name in sorted(seen):
        yield name, seen[name]


@register
class StoreAddressing(Rule):
    """Flag store-addressing functions that read semantic task content."""

    id = "RL007"
    name = "store-addressing"
    summary = (
        "result-store entry paths and shard assignment must be pure "
        "functions of the task digest, never of semantic task content"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/store/")

    def check_project(self, project: Project) -> Iterable[Finding]:
        modules = project.in_scope(self)
        if not modules:
            return
        found = False
        for module in modules:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name in WATCHED_FUNCTIONS
                ):
                    found = True
                    for name, ref in _semantic_refs(node):
                        yield module.finding(
                            self,
                            ref,
                            f"store-addressing function {node.name!r} "
                            f"references semantic task content {name!r}; "
                            "entry locations and shard assignment must "
                            "derive from the task digest alone (task_hash), "
                            "or sharded stores stop merging byte-identically "
                            "— see tools/lint/rules/rl007_store_addressing.py",
                        )
        if not found:
            yield modules[0].finding(
                self,
                modules[0].tree,
                "none of the watched store-addressing functions "
                f"({', '.join(WATCHED_FUNCTIONS)}) were found in this lint "
                "run — run repro lint on the whole src tree, or update "
                "tools/lint/rules/rl007_store_addressing.py after a rename",
            )
